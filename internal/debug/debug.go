// Package debug is an interactive debugger for the MTASC simulator,
// wired into `ascsim -i`. It drives a core.Processor cycle by cycle with
// breakpoints on program counters, register and memory inspection, and
// pipeline diagrams of recent instructions.
package debug

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/trace"
)

// Debugger is a REPL around a processor. The processor should be built
// with TraceDepth != 0 so diagrams and breakpoints work.
type Debugger struct {
	proc *core.Processor
	in   *bufio.Scanner
	out  io.Writer

	breakpoints map[int]bool
	seenTrace   int // trace records already inspected for breakpoints
	done        bool
}

// New builds a debugger reading commands from in and printing to out.
func New(proc *core.Processor, in io.Reader, out io.Writer) *Debugger {
	return &Debugger{
		proc:        proc,
		in:          bufio.NewScanner(in),
		out:         out,
		breakpoints: map[int]bool{},
	}
}

func (d *Debugger) printf(format string, args ...any) {
	fmt.Fprintf(d.out, format, args...)
}

const helpText = `commands:
  s [n]       step n cycles (default 1)
  c           continue to halt or breakpoint
  b <pc>      toggle a breakpoint at program counter <pc>
  r [tid]     scalar registers of thread tid (default 0)
  p <pe> [t]  parallel registers and flags of PE <pe> (thread t, default 0)
  m <a> <n>   dump n words of scalar data memory from address a
  t           thread status table
  d [n]       pipeline diagram of the last n issued instructions (default 8)
  st          run statistics so far
  q           quit
`

// Run executes the REPL until quit, halt (after reporting), or EOF.
func (d *Debugger) Run() error {
	d.printf("mtasc debugger: %d PEs; 'help' for commands\n", d.proc.Machine().Config().PEs)
	for {
		d.printf("(asc) ")
		if !d.in.Scan() {
			return d.in.Err()
		}
		line := strings.TrimSpace(d.in.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]
		switch cmd {
		case "q", "quit", "exit":
			return nil
		case "help", "h", "?":
			d.printf("%s", helpText)
		case "s", "step":
			n := 1
			if len(args) > 0 {
				n = d.atoi(args[0], 1)
			}
			d.step(n, false)
		case "c", "continue":
			d.step(1<<62, true)
		case "b", "break":
			if len(args) != 1 {
				d.printf("usage: b <pc>\n")
				continue
			}
			pc := d.atoi(args[0], -1)
			if pc < 0 {
				continue
			}
			if d.breakpoints[pc] {
				delete(d.breakpoints, pc)
				d.printf("breakpoint at pc %d removed\n", pc)
			} else {
				d.breakpoints[pc] = true
				d.printf("breakpoint at pc %d set\n", pc)
			}
		case "r", "regs":
			tid := 0
			if len(args) > 0 {
				tid = d.atoi(args[0], 0)
			}
			d.regs(tid)
		case "p", "pregs":
			if len(args) < 1 {
				d.printf("usage: p <pe> [tid]\n")
				continue
			}
			pe := d.atoi(args[0], 0)
			tid := 0
			if len(args) > 1 {
				tid = d.atoi(args[1], 0)
			}
			d.pregs(tid, pe)
		case "m", "mem":
			if len(args) < 2 {
				d.printf("usage: m <addr> <count>\n")
				continue
			}
			a, n := d.atoi(args[0], 0), d.atoi(args[1], 1)
			for i := 0; i < n; i++ {
				d.printf("  [%4d] %d\n", a+i, d.proc.Machine().ScalarMem(a+i))
			}
		case "t", "threads":
			d.threads()
		case "d", "diagram":
			n := 8
			if len(args) > 0 {
				n = d.atoi(args[0], 8)
			}
			recs := d.proc.Trace()
			if len(recs) > n {
				recs = recs[len(recs)-n:]
			}
			d.printf("%s", trace.Diagram(d.proc.Params(), recs))
		case "st", "stats":
			d.printf("cycle %d\n", d.proc.Cycle())
		default:
			d.printf("unknown command %q; 'help' for help\n", cmd)
		}
	}
}

func (d *Debugger) atoi(s string, def int) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		d.printf("bad number %q\n", s)
		return def
	}
	return v
}

// step advances up to n cycles, stopping at breakpoints when breakable.
func (d *Debugger) step(n int, breakable bool) {
	if d.done {
		d.printf("machine halted; restart the simulator to run again\n")
		return
	}
	for i := 0; i < n; i++ {
		more, err := d.proc.Step()
		if err != nil {
			d.printf("error: %v\n", err)
			d.done = true
			return
		}
		if !more {
			d.printf("halted at cycle %d\n", d.proc.Cycle())
			d.done = true
			return
		}
		// Breakpoint check: any newly issued instruction at a break PC.
		recs := d.proc.Trace()
		for ; d.seenTrace < len(recs); d.seenTrace++ {
			r := recs[d.seenTrace]
			if breakable && d.breakpoints[r.PC] {
				d.printf("breakpoint: t%d pc %d %v at cycle %d\n", r.Thread, r.PC, r.Inst, r.Issue)
				d.seenTrace++
				return
			}
		}
	}
	d.printf("cycle %d\n", d.proc.Cycle())
}

func (d *Debugger) regs(tid int) {
	m := d.proc.Machine()
	if tid < 0 || tid >= m.Config().Threads {
		d.printf("no thread %d\n", tid)
		return
	}
	d.printf("thread %d (pc %d, active %v):\n", tid, m.PC(tid), m.ThreadActive(tid))
	for r := 0; r < 16; r += 4 {
		for c := 0; c < 4; c++ {
			d.printf("  s%-2d %6d", r+c, m.Scalar(tid, uint8(r+c)))
		}
		d.printf("\n")
	}
}

func (d *Debugger) pregs(tid, pe int) {
	m := d.proc.Machine()
	cfg := m.Config()
	if pe < 0 || pe >= cfg.PEs || tid < 0 || tid >= cfg.Threads {
		d.printf("no PE %d / thread %d\n", pe, tid)
		return
	}
	d.printf("PE %d, thread %d:\n", pe, tid)
	for r := 0; r < 16; r += 4 {
		for c := 0; c < 4; c++ {
			d.printf("  p%-2d %6d", r+c, m.Parallel(tid, pe, uint8(r+c)))
		}
		d.printf("\n")
	}
	d.printf("  flags:")
	for f := 0; f < 8; f++ {
		v := 0
		if m.Flag(tid, pe, uint8(f)) {
			v = 1
		}
		d.printf(" f%d=%d", f, v)
	}
	d.printf("\n")
}

func (d *Debugger) threads() {
	m := d.proc.Machine()
	d.printf("thread  state    pc  mailbox\n")
	for t := 0; t < m.Config().Threads; t++ {
		state := "free"
		if m.ThreadActive(t) {
			state = "active"
		}
		d.printf("  t%-4d %-7s %4d  %d\n", t, state, m.PC(t), m.MailboxLen(t))
	}
}
