// Block-plane dispatch for gang execution: the gang analogue of
// block.go. The closed form is the same — with exactly one active
// hardware thread the shared front end's per-cycle decisions collapse to
// max(eligible, scoreboard minimum, unit-free) — and the per-lane
// semantics of Gang.issue are preserved exactly: a singleton in-block
// micro-op executes on every live lane with trapped lanes finalized
// before the shared accounting (their statistics exclude the trapping
// instruction) and outcome-divergent lanes peeled after it; fused
// superinstructions are trap-free and outcome-free by construction, so
// they execute on every lane with no divergence check. Gang lanes are
// always serial-engine machines, so the fused kernels are always legal.
//
// This file is in the hot-path lint set: dispatch keys on precomputed
// micro-op selector fields only.
package core

import (
	"repro/internal/isa"
	"repro/internal/pipeline"
)

// soleActive mirrors Processor.soleActive against the leader lane. The
// caller must ensure the gang has at least one live lane.
func (g *Gang) soleActive() (int, soleState) {
	lead := g.leader()
	tid, nm, nf := -1, 0, 0
	for t := 0; t < g.cfg.Machine.Threads; t++ {
		ma := lead.ThreadActive(t)
		fa := g.front.Active(t)
		if ma {
			nm++
		}
		if fa {
			nf++
		}
		if ma && fa {
			tid = t
		}
		if nm > 1 || nf > 1 {
			return -1, soleMany
		}
	}
	if tid >= 0 && nm == 1 && nf == 1 {
		return tid, soleOne
	}
	return -1, soleNone
}

// accountGap mirrors Processor.accountGap on the shared gang statistics.
func (g *Gang) accountGap(eligible, minIssue int64, kind pipeline.HazardKind, free, until int64) {
	c := g.cycle
	if e := min64(until, eligible); e > c {
		g.stats.IdleCycles += e - c
		g.stats.IdleByKind[pipeline.HazardFetch] += e - c
		c = e
	}
	if m := min64(until, minIssue); m > c {
		g.stats.IdleCycles += m - c
		g.stats.IdleByKind[kind] += m - c
		c = m
	}
	if f := min64(until, free); f > c {
		g.stats.IdleCycles += f - c
		g.stats.IdleByKind[pipeline.HazardStructural] += f - c
	}
}

// dispatchOne issues the head micro-op at the earliest legal cycle on
// every live lane, mirroring Gang.issue's trap/peel handling. It never
// returns an error: per-lane traps finalize the lane with solo
// semantics and the gang continues (or ends when none survive).
func (g *Gang) dispatchOne(tid int, stopAt int64) blockStep {
	head, ok := g.front.Head(tid)
	if !ok {
		return stepNoHead
	}
	d := head.D
	eligible := head.EligibleAt()
	minIssue, kind := g.sb.MinIssue(tid, d)
	free := g.unitFreeAt(d)
	issueC := g.cycle
	if eligible > issueC {
		issueC = eligible
	}
	if minIssue > issueC {
		issueC = minIssue
	}
	if free > issueC {
		issueC = free
	}
	if issueC >= stopAt {
		if stopAt-1-g.lastIssue > g.cfg.DeadlockWindow {
			return stepBail
		}
		g.accountGap(eligible, minIssue, kind, free, stopAt)
		g.front.FetchRun(tid, g.cycle, stopAt-1)
		g.cycle = stopAt
		return stepStopped
	}
	if issueC-1-g.lastIssue > g.cfg.DeadlockWindow {
		return stepBail
	}
	if issueC > g.cycle {
		g.accountGap(eligible, minIssue, kind, free, issueC)
		g.front.FetchRun(tid, g.cycle, issueC-1)
		g.cycle = issueC
	}

	// Issue at issueC, replicating Gang.issue for an in-block op.
	g.front.PopHead(tid)
	if stall := issueC - eligible; stall > 0 {
		k := kind
		if minIssue <= eligible {
			switch {
			case free > eligible:
				k = pipeline.HazardStructural
			default:
				k = pipeline.HazardNone
			}
		}
		if k != pipeline.HazardNone {
			g.stats.StallByKind[k] += stall
		}
	}

	out := g.outBuf[:0]
	errs := g.errBuf[:0]
	for _, li := range g.live {
		o, err := g.lanes[li].ExecDecoded(tid, d)
		out = append(out, o)
		errs = append(errs, err)
	}
	g.outBuf, g.errBuf = out, errs

	ref := -1
	for k, e := range errs {
		if e != nil {
			g.finalize(g.live[k], e)
		} else if ref < 0 {
			ref = k
		}
	}
	if ref < 0 {
		g.live = g.live[:0]
		return stepIssued
	}
	refOut := out[ref]

	g.sb.Record(tid, d, issueC)
	g.reserveUnit(d, issueC)
	if c := g.params.CompletionTime(d, issueC); c > g.maxCompletion {
		g.maxCompletion = c
	}
	g.stats.Instructions++
	g.stats.PerThread[tid]++
	switch d.Class {
	case isa.ClassScalar:
		g.stats.Scalar++
	case isa.ClassParallel:
		g.stats.Parallel++
	case isa.ClassReduction:
		g.stats.Reduction++
	}

	// In-block ops produce the same fall-through Outcome on every
	// non-trapped lane, so this peel scan finds nothing; it is kept
	// identical to Gang.issue as the enforcement of that invariant.
	keep := g.liveBuf[:0]
	for k, li := range g.live {
		switch {
		case errs[k] != nil:
		case out[k] != refOut:
			g.peel(li)
		default:
			keep = append(keep, li)
		}
	}
	g.live, g.liveBuf = keep, g.live

	g.lastIssue = issueC
	if g.cfg.Scheduler != SchedFixed {
		g.front.MarkPicked(tid)
	}
	g.front.FetchRun(tid, issueC, issueC)
	g.cycle = issueC + 1
	return stepIssued
}

// dispatchFused mirrors Processor.dispatchFused across all live lanes.
// Fused kernels are trap-free and outcome-free, so no lane can finalize
// or peel inside one.
func (g *Gang) dispatchFused(tid int, bo *isa.BlockOp, stopAt int64) fusedStatus {
	k := len(bo.Ops)
	head, ok := g.front.Head(tid)
	if !ok || head.PC != bo.PC {
		return fusedFall
	}
	d0 := bo.Ops[0]
	eligible := head.EligibleAt()
	minIssue, kind := g.sb.MinIssue(tid, d0)
	issueC := g.cycle
	if eligible > issueC {
		issueC = eligible
	}
	if minIssue > issueC {
		issueC = minIssue
	}
	if issueC+int64(k) > stopAt {
		return fusedFall
	}
	if issueC-1-g.lastIssue > g.cfg.DeadlockWindow {
		return fusedFall
	}
	for j := 1; j < k; j++ {
		e, ok := g.front.Entry(tid, j)
		if !ok || e.PC != bo.PC+j {
			return fusedFall
		}
		if e.EligibleAt() > issueC+int64(j) {
			return fusedFall
		}
		if ext, _ := g.sb.MinIssue(tid, bo.Ops[j]); ext > issueC+int64(j) {
			return fusedFall
		}
	}

	if issueC > g.cycle {
		g.accountGap(eligible, minIssue, kind, 0, issueC)
		g.front.FetchRun(tid, g.cycle, issueC-1)
		g.cycle = issueC
	}

	for _, li := range g.live {
		g.lanes[li].ExecFused(tid, bo.Ops)
	}
	for j := 0; j < k; j++ {
		c := issueC + int64(j)
		h := g.front.PopHead(tid)
		d := bo.Ops[j]
		mi, kd := g.sb.MinIssue(tid, d)
		if stall := c - h.EligibleAt(); stall > 0 {
			k2 := kd
			if mi <= h.EligibleAt() {
				k2 = pipeline.HazardNone
			}
			if k2 != pipeline.HazardNone {
				g.stats.StallByKind[k2] += stall
			}
		}
		g.sb.Record(tid, d, c)
		if ct := g.params.CompletionTime(d, c); ct > g.maxCompletion {
			g.maxCompletion = ct
		}
		g.stats.Instructions++
		g.stats.PerThread[tid]++
		switch d.Class {
		case isa.ClassParallel:
			g.stats.Parallel++
		case isa.ClassReduction:
			g.stats.Reduction++
		}
		g.lastIssue = c
		if g.cfg.Scheduler != SchedFixed {
			g.front.MarkPicked(tid)
		}
		g.front.FetchRun(tid, c, c)
	}
	g.cycle = issueC + int64(k)
	return fusedDone
}

// runBlock mirrors Processor.runBlock for the gang front end.
func (g *Gang) runBlock(stopAt int64) (ran bool) {
	if len(g.live) == 0 {
		return false
	}
	tid, st := g.soleActive()
	if st != soleOne {
		if st == soleMany {
			g.blockFallbacks[fbMultithread]++
		}
		return false
	}
	head, ok := g.front.Head(tid)
	if !ok {
		g.blockFallbacks[fbRefill]++
		return false
	}
	blk, opIdx, sub, ok := g.blocks.Lookup(head.PC)
	if !ok {
		g.blockFallbacks[fbBoundary]++
		return false
	}
	g.blockDispatches++

	progressed := false
	for oi := opIdx; oi < len(blk.Ops); oi++ {
		bo := &blk.Ops[oi]
		if len(bo.Ops) > 1 && sub == 0 {
			if g.dispatchFused(tid, bo, stopAt) == fusedDone {
				progressed = true
				continue
			}
		}
		for ci := sub; ci < len(bo.Ops); ci++ {
			switch g.dispatchOne(tid, stopAt) {
			case stepIssued:
				progressed = true
				if len(g.live) == 0 {
					return true // every lane trapped: the run is over
				}
			case stepStopped:
				return true
			case stepNoHead:
				if progressed {
					return true
				}
				g.blockFallbacks[fbRefill]++
				return false
			case stepBail:
				if progressed {
					return true
				}
				g.blockFallbacks[fbWindow]++
				return false
			}
		}
		sub = 0
	}
	return true
}
