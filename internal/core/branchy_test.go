package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/machine"
)

// randomBranchyProgram generates a terminating program with data-dependent
// forward branches and jumps: control flow only ever moves forward, so the
// program always halts, but taken/untaken outcomes depend on computed
// register values. This stresses the fetch unit's speculative fetch,
// flush-on-redirect, and the buffer/architectural PC consistency invariant.
func randomBranchyProgram(r *rand.Rand, blocks int) []isa.Inst {
	var prog []isa.Inst
	type patch struct {
		at     int
		target int // block index to resolve
	}
	var patches []patch
	blockStart := make([]int, blocks+1)

	aluOps := []isa.Op{isa.ADD, isa.SUB, isa.XOR, isa.AND, isa.OR}
	branchOps := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU}

	for bi := 0; bi < blocks; bi++ {
		blockStart[bi] = len(prog)
		// A few ALU instructions mixing scalar and parallel work.
		n := 1 + r.Intn(4)
		for i := 0; i < n; i++ {
			switch r.Intn(3) {
			case 0:
				prog = append(prog, isa.Inst{
					Op: aluOps[r.Intn(len(aluOps))],
					Rd: uint8(1 + r.Intn(15)), Ra: uint8(r.Intn(16)), Rb: uint8(r.Intn(16)),
				})
			case 1:
				prog = append(prog, isa.Inst{
					Op: isa.ADDI, Rd: uint8(1 + r.Intn(15)), Ra: uint8(r.Intn(16)),
					Imm: int32(r.Intn(64)),
				})
			default:
				prog = append(prog, isa.Inst{
					Op: isa.PADD, Rd: uint8(1 + r.Intn(15)), Ra: uint8(r.Intn(16)),
					Rb: uint8(r.Intn(16)), SB: r.Intn(2) == 0,
				})
			}
		}
		// Block terminator: forward branch, forward jump, or fall-through.
		if bi < blocks-1 {
			target := bi + 1 + r.Intn(blocks-bi-1) + 1 // any later block (or the end)
			if target > blocks {
				target = blocks
			}
			switch r.Intn(3) {
			case 0:
				prog = append(prog, isa.Inst{
					Op: branchOps[r.Intn(len(branchOps))],
					Rd: uint8(r.Intn(16)), Ra: uint8(r.Intn(16)),
				})
				patches = append(patches, patch{at: len(prog) - 1, target: target})
			case 1:
				prog = append(prog, isa.Inst{Op: isa.J})
				patches = append(patches, patch{at: len(prog) - 1, target: target})
			}
		}
	}
	blockStart[blocks] = len(prog)
	prog = append(prog, isa.Inst{Op: isa.HALT})
	for _, p := range patches {
		prog[p.at].Imm = int32(blockStart[p.target])
	}
	return prog
}

// Property: the pipelined core with speculative fetch and redirect flushes
// computes exactly the same architectural state as the plain functional
// interpreter, on random forward-branching programs.
func TestTimedMatchesFunctionalBranchy(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := randomBranchyProgram(r, 2+r.Intn(12))
		mc := machine.Config{PEs: 4, Threads: 1, Width: 8}

		ref, err := machine.New(mc, prog)
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		for !ref.Halted() {
			if _, err := ref.Exec(0, prog[ref.PC(0)]); err != nil {
				t.Fatal(err)
			}
			if steps++; steps > len(prog)+4 {
				t.Fatal("forward-only program did not terminate")
			}
		}

		p, err := New(Config{Machine: mc, Arity: 2}, prog)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(100000); err != nil {
			t.Fatal(err)
		}
		for reg := uint8(1); reg < 16; reg++ {
			if p.Machine().Scalar(0, reg) != ref.Scalar(0, reg) {
				t.Logf("seed %d: s%d = %d, want %d", seed, reg,
					p.Machine().Scalar(0, reg), ref.Scalar(0, reg))
				return false
			}
		}
		for pe := 0; pe < 4; pe++ {
			for reg := uint8(1); reg < 16; reg++ {
				if p.Machine().Parallel(0, pe, reg) != ref.Parallel(0, pe, reg) {
					t.Logf("seed %d: PE %d p%d mismatch", seed, pe, reg)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the same branchy programs behave identically under SMT (the
// second issue port must never break per-thread program order).
func TestSMTMatchesFunctionalBranchy(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := randomBranchyProgram(r, 2+r.Intn(10))
		mc := machine.Config{PEs: 4, Threads: 2, Width: 8}

		ref, err := machine.New(mc, prog)
		if err != nil {
			t.Fatal(err)
		}
		for !ref.Halted() {
			if _, err := ref.Exec(0, prog[ref.PC(0)]); err != nil {
				t.Fatal(err)
			}
		}
		p, err := New(Config{Machine: mc, Arity: 2, SMT: true}, prog)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(100000); err != nil {
			t.Fatal(err)
		}
		for reg := uint8(1); reg < 16; reg++ {
			if p.Machine().Scalar(0, reg) != ref.Scalar(0, reg) {
				t.Logf("seed %d: s%d mismatch", seed, reg)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
