package core_test

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/progs"
)

// runKernel assembles and runs one associative kernel instance with the
// block plane on or off, checks the kernel's own result invariant, and
// returns the run statistics and terminal architectural snapshot.
func runKernel(t *testing.T, ins progs.Instance, pes int, eng machine.Engine, off bool) (core.Stats, []byte) {
	t.Helper()
	prog, err := asm.Assemble(ins.Source)
	if err != nil {
		t.Fatal(err)
	}
	threads := ins.Threads
	if threads < 1 {
		threads = 1
	}
	cfg := core.Config{}
	cfg.Machine = ins.MachineConfig(pes, threads)
	cfg.Machine.Engine = eng
	if off {
		cfg.Blocks = core.BlocksOff
	}
	p, err := core.New(cfg, prog.Insts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Machine().Close()
	if err := p.Machine().LoadLocalMem(ins.LocalMem); err != nil {
		t.Fatal(err)
	}
	if err := p.Machine().LoadScalarMem(ins.ScalarMem); err != nil {
		t.Fatal(err)
	}
	s, err := p.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Check(p.Machine()); err != nil {
		t.Fatal(err)
	}
	return s, p.Snapshot()
}

// TestBlockKernelsOnOffIdentical pins the block plane against the full
// associative kernel library on both host engines: blocks-on must be
// cycle-for-cycle identical to blocks-off — same cycles, instructions,
// idle slots, fetches, and flushes, and a bit-identical snapshot — and
// the single-threaded kernels must actually take the block path (a
// silently disengaged fast path would pass the identity check for free).
func TestBlockKernelsOnOffIdentical(t *testing.T) {
	for _, eng := range []machine.Engine{machine.EngineSerial, machine.EngineParallel} {
		for _, ins := range []progs.Instance{
			progs.MaxSearch(16, 1),
			progs.ResponderSum(16, 2),
			progs.CountAndSum(16, 3),
			progs.MST(16, 4),
			progs.StringSearch(16, 4, 5),
			progs.ImageSum(16, 16, 6),
			progs.MTReduction(16, 4, 8),
		} {
			on, snapOn := runKernel(t, ins, 16, eng, false)
			off, snapOff := runKernel(t, ins, 16, eng, true)
			if on.Cycles != off.Cycles || on.Instructions != off.Instructions ||
				on.IdleCycles != off.IdleCycles || on.Fetches != off.Fetches || on.Flushes != off.Flushes {
				t.Fatalf("%s (engine %v): stats mismatch\n on: cycles=%d inst=%d idle=%d fetches=%d\noff: cycles=%d inst=%d idle=%d fetches=%d",
					ins.Name, eng, on.Cycles, on.Instructions, on.IdleCycles, on.Fetches,
					off.Cycles, off.Instructions, off.IdleCycles, off.Fetches)
			}
			if !bytes.Equal(snapOn, snapOff) {
				t.Fatalf("%s (engine %v): snapshots differ between blocks on and off", ins.Name, eng)
			}
			if ins.Threads <= 1 && on.BlockDispatches == 0 {
				t.Fatalf("%s (engine %v): block plane never engaged (fallbacks %v)", ins.Name, eng, on.BlockFallbacks)
			}
			if off.BlockDispatches != 0 {
				t.Fatalf("%s (engine %v): blocks-off run counted %d dispatches", ins.Name, eng, off.BlockDispatches)
			}
		}
	}
}
