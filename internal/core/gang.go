// Gang execution: N same-program jobs sharing one cycle-accurate front end.
//
// A Gang is the cross-job analogue of the broadcast network inside one
// machine: the paper's processor amortizes one decoded instruction over all
// PEs; the gang amortizes one fetch/decode/schedule/issue pass over all jobs
// ("lanes") that run the same program on the same architecture. Every cycle
// the shared front end classifies threads, picks one, and the chosen micro-op
// executes on every live lane's machine.NewGangLanes state plane.
//
// Lockstep is sound exactly while the lanes' *control* behavior agrees: the
// front end's decisions depend only on the program (shared), the timing
// parameters (shared), thread PCs and liveness (identical while outcomes
// agree), and interthread-sync blocking (data-dependent). Divergence is
// detected at two points and resolved by peeling the divergent lane out of
// the gang at a quiescent boundary:
//
//   - pre-issue: a blocking micro-op (TSEND/TRECV/TJOIN) whose blocked
//     status differs from the leader lane's — the lane has NOT executed the
//     op and peels with the instruction still pending;
//   - post-execute: a machine.Outcome that differs from the reference
//     lane's (branch direction, halt, exit, spawn) — the lane HAS executed
//     the op and peels with it counted.
//
// A lane that traps finalizes immediately with solo semantics (the trapping
// instruction is never recorded). Peeled lanes carry an architectural
// snapshot; the caller resumes them on an ordinary solo processor via
// Processor.Restore, which yields bit-identical final state for programs
// whose result does not depend on the issue schedule (in particular, all
// single-threaded control divergence).
package core

import (
	"context"
	"fmt"

	"repro/internal/cu"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/pipeline"
)

// LaneResult is the terminal state of one gang lane.
type LaneResult struct {
	// Stats is the lane's cycle accounting at the point it left the gang:
	// the full run for lanes that completed in lockstep (identical to a
	// solo run), or the gang-phase prefix for peeled lanes.
	Stats Stats

	// Err is the lane's terminal error: an architectural trap, a wrapped
	// ErrCycleLimit, a context error, or nil for a clean halt. Unset for
	// peeled lanes (they have not finished).
	Err error

	// Peeled marks a lane that diverged from the gang and must be resumed
	// on a solo processor. Snapshot is its architectural state at the peel
	// point (machine.Snapshot format) and PeelCycle the gang cycle it left
	// at, for continuation budgets and merged accounting.
	Peeled    bool
	PeelCycle int64
	Snapshot  []byte
}

// Gang runs n identically configured, same-program processors in lockstep
// behind a single control-unit front end and scoreboard.
type Gang struct {
	cfg    Config
	params pipeline.Params
	lanes  []*machine.Machine
	front  *cu.CU
	sb     *pipeline.Scoreboard

	cycle         int64
	lastIssue     int64
	maxCompletion int64
	halted        bool

	cuMulFree, cuDivFree int64
	peMulFree, peDivFree int64

	// stats is the shared lockstep accounting; every lane that completes in
	// the gang reports a deep copy of it (the front end behaved identically
	// to a solo run, so the numbers are per-job, not per-gang).
	stats Stats

	statusBuf []threadState
	readyFn   func(int) bool // stored once; closes over statusBuf

	// live holds the indices of lanes still executing in lockstep; res[i]
	// is filled when lane i leaves (peel, trap, or run end). liveBuf,
	// outBuf, and errBuf are reused each cycle to keep Step allocation-free.
	live    []int
	res     []LaneResult
	liveBuf []int
	outBuf  []machine.Outcome
	errBuf  []error

	// Block-dispatch tier (gangblock.go); nil when Config.Blocks is off.
	// Gang lanes are always serial-engine machines, so fused kernels
	// need no separate gate.
	blocks          *isa.BlockProgram
	blockDispatches int64
	blockFallbacks  [numFallbacks]int64
}

// NewGangDecoded builds a gang of n lanes around a shared decoded program.
// Gangs do not support SMT (the dual-issue second port re-classifies threads
// mid-cycle, which the per-lane divergence checks do not model), structural
// network co-simulation, or tracing; serving callers exclude such jobs from
// ganging instead.
func NewGangDecoded(cfg Config, dp *isa.DecodedProgram, n int) (*Gang, error) {
	if cfg.SMT {
		return nil, fmt.Errorf("core: gang execution does not support SMT")
	}
	if cfg.StructuralNetworks {
		return nil, fmt.Errorf("core: gang execution does not support structural network co-simulation")
	}
	if cfg.TraceDepth != 0 {
		return nil, fmt.Errorf("core: gang execution does not support tracing")
	}
	params, err := cfg.Params()
	if err != nil {
		return nil, err
	}
	lanes, err := machine.NewGangLanes(cfg.Machine, dp, n)
	if err != nil {
		return nil, err
	}
	front, err := cu.New(cu.Config{
		Threads:     cfg.Machine.Threads,
		BufferDepth: cfg.BufferDepth,
		FetchWidth:  cfg.FetchWidth,
	}, dp)
	if err != nil {
		return nil, err
	}
	if cfg.DeadlockWindow == 0 {
		cfg.DeadlockWindow = 100000
	}
	g := &Gang{
		cfg:    cfg,
		params: params,
		lanes:  lanes,
		front:  front,
		sb:     pipeline.NewScoreboard(params, cfg.Machine.Threads),
	}
	g.stats.PerThread = make([]int64, cfg.Machine.Threads)
	g.stats.IdleByKind = make(map[pipeline.HazardKind]int64)
	g.stats.StallByKind = make(map[pipeline.HazardKind]int64)
	g.statusBuf = make([]threadState, cfg.Machine.Threads)
	g.readyFn = func(tid int) bool { return g.statusBuf[tid].ready }
	g.live = make([]int, 0, n)
	for i := 0; i < n; i++ {
		g.live = append(g.live, i)
	}
	g.liveBuf = make([]int, 0, n)
	g.res = make([]LaneResult, n)
	g.outBuf = make([]machine.Outcome, 0, n)
	g.errBuf = make([]error, 0, n)
	if cfg.Blocks != BlocksOff {
		g.blocks = dp.Blocks()
	}
	return g, nil
}

// Lanes returns the number of lanes the gang was built with.
func (g *Gang) Lanes() int { return len(g.lanes) }

// Lane exposes lane i's architectural state (for loading data and reading
// results).
func (g *Gang) Lane(i int) *machine.Machine { return g.lanes[i] }

// LiveLanes returns how many lanes are still executing in lockstep.
func (g *Gang) LiveLanes() int { return len(g.live) }

// Params returns the derived timing parameters.
func (g *Gang) Params() pipeline.Params { return g.params }

// Cycle returns the current lockstep cycle.
func (g *Gang) Cycle() int64 { return g.cycle }

// leader is the lane whose state drives shared front-end decisions. Any live
// lane would do — they agree on everything the front end reads — so the
// first live one is used.
func (g *Gang) leader() *machine.Machine { return g.lanes[g.live[0]] }

// threadStatus mirrors Processor.threadStatus against the leader lane, with
// one addition: blocking micro-ops compare blocked status across all live
// lanes and peel disagreeing followers (see blockingStatus).
func (g *Gang) threadStatus(tid int) (ready bool, why blocker) {
	lead := g.leader()
	if !lead.ThreadActive(tid) || !g.front.Active(tid) {
		return false, blocker{kind: pipeline.HazardNone, readyAt: -1}
	}
	head, ok := g.front.Head(tid)
	if !ok {
		return false, blocker{kind: pipeline.HazardFetch, readyAt: -1}
	}
	if head.PC != lead.PC(tid) {
		panic(fmt.Sprintf("core: gang thread %d buffer head pc %d != architectural pc %d", tid, head.PC, lead.PC(tid)))
	}
	if e := head.EligibleAt(); e > g.cycle {
		return false, blocker{kind: pipeline.HazardFetch, readyAt: e}
	}
	if min, kind := g.sb.MinIssue(tid, head.D); min > g.cycle {
		return false, blocker{kind: kind, readyAt: min}
	}
	if free := g.unitFreeAt(head.D); free > g.cycle {
		return false, blocker{kind: pipeline.HazardStructural, readyAt: free}
	}
	if head.D.Info.Blocking && g.blockingStatus(tid, head.D) {
		return false, blocker{kind: pipeline.HazardSync, readyAt: -1}
	}
	return true, blocker{}
}

// blockingStatus evaluates a blocking micro-op's blocked state across the
// gang. Mailbox state is data-dependent (a TSEND target register can differ
// between lanes without any prior Outcome divergence), so a follower whose
// blocked status disagrees with the leader's would break lockstep on the
// very next issue decision. Such followers peel here — before the op
// executes, a quiescent point — and the leader's status is returned.
func (g *Gang) blockingStatus(tid int, d *isa.Decoded) bool {
	lead := g.leader().BlockedDecoded(tid, d)
	peeled := false
	keep := g.liveBuf[:0]
	keep = append(keep, g.live[0])
	for _, li := range g.live[1:] {
		if g.lanes[li].BlockedDecoded(tid, d) != lead {
			g.peel(li)
			peeled = true
		} else {
			keep = append(keep, li)
		}
	}
	if peeled {
		g.live, g.liveBuf = keep, g.live
	}
	return lead
}

// unitFreeAt mirrors Processor.unitFreeAt.
func (g *Gang) unitFreeAt(d *isa.Decoded) int64 {
	info := d.Info
	switch {
	case info.IsDiv && d.Class == isa.ClassScalar:
		return g.cuDivFree
	case info.IsDiv:
		return g.peDivFree
	case info.IsMul && g.params.SeqMul && d.Class == isa.ClassScalar:
		return g.cuMulFree
	case info.IsMul && g.params.SeqMul:
		return g.peMulFree
	}
	return 0
}

// reserveUnit mirrors Processor.reserveUnit.
func (g *Gang) reserveUnit(d *isa.Decoded, t int64) {
	info := d.Info
	switch {
	case info.IsDiv && d.Class == isa.ClassScalar:
		g.cuDivFree = t + int64(g.params.DivLatency)
	case info.IsDiv:
		g.peDivFree = t + int64(g.params.DivLatency)
	case info.IsMul && g.params.SeqMul && d.Class == isa.ClassScalar:
		g.cuMulFree = t + int64(g.params.MulLatency)
	case info.IsMul && g.params.SeqMul:
		g.peMulFree = t + int64(g.params.MulLatency)
	}
}

func (g *Gang) anyActive() bool {
	lead := g.leader()
	for tid := 0; tid < g.cfg.Machine.Threads; tid++ {
		if lead.ThreadActive(tid) {
			return true
		}
	}
	return false
}

func (g *Gang) done() bool {
	if len(g.live) == 0 {
		return true
	}
	if !g.halted && !g.leader().Halted() {
		return false
	}
	return g.cycle >= g.maxCompletion
}

// Step simulates one lockstep cycle across all live lanes. It returns false
// once every lane has left the gang or the survivors have halted and
// drained.
func (g *Gang) Step() (bool, error) {
	if g.done() {
		return false, nil
	}

	n := g.cfg.Machine.Threads
	sts := g.statusBuf
	readyCount := 0
	for tid := 0; tid < n; tid++ {
		r, why := g.threadStatus(tid)
		sts[tid] = threadState{ready: r, why: why}
		if r {
			readyCount++
		}
	}

	var picked int
	switch g.cfg.Scheduler {
	case SchedFixed:
		picked = g.front.PickFixed(g.readyFn)
	default:
		picked = g.front.PickRotating(g.readyFn)
	}

	if picked >= 0 {
		g.issue(picked)
		if extra := readyCount - 1; extra > 0 {
			g.stats.Contention += int64(extra)
		}
		g.lastIssue = g.cycle
	} else if g.anyActive() {
		g.stats.IdleCycles++
		best := blocker{kind: pipeline.HazardNone, readyAt: -1}
		for tid := 0; tid < n; tid++ {
			w := sts[tid].why
			if w.kind == pipeline.HazardNone {
				continue
			}
			if best.kind == pipeline.HazardNone ||
				(w.readyAt >= 0 && (best.readyAt < 0 || w.readyAt < best.readyAt)) {
				best = w
			}
		}
		if best.kind != pipeline.HazardNone {
			g.stats.IdleByKind[best.kind]++
		}
		if g.cycle-g.lastIssue > g.cfg.DeadlockWindow {
			return false, fmt.Errorf("core: no instruction issued for %d cycles (deadlock at cycle %d)", g.cfg.DeadlockWindow, g.cycle)
		}
	}

	g.front.Fetch(g.cycle)
	g.cycle++
	return !g.done(), nil
}

// issue pops thread tid's head micro-op and executes it on every live lane.
// Unlike Processor.issue it never returns an error: a lane that traps
// finalizes individually (solo semantics — the trapping instruction is not
// recorded or counted) and the rest of the gang continues.
func (g *Gang) issue(tid int) {
	head := g.front.PopHead(tid)
	d := head.D

	// Stall accounting, identical to the solo path (and, like it, recorded
	// before execution, so a trapping lane still sees the stall).
	minIssue, kind := g.sb.MinIssue(tid, d)
	stall := g.cycle - head.EligibleAt()
	if stall > 0 {
		k := kind
		if minIssue <= head.EligibleAt() {
			switch {
			case g.unitFreeAt(d) > head.EligibleAt():
				k = pipeline.HazardStructural
			default:
				k = pipeline.HazardNone
			}
		}
		if k != pipeline.HazardNone {
			g.stats.StallByKind[k] += stall
		}
	}

	// Execute on every live lane.
	out := g.outBuf[:0]
	errs := g.errBuf[:0]
	for _, li := range g.live {
		o, err := g.lanes[li].ExecDecoded(tid, d)
		out = append(out, o)
		errs = append(errs, err)
	}
	g.outBuf, g.errBuf = out, errs

	// Trapped lanes finalize before the shared accounting below, so their
	// statistics exclude this instruction — exactly what a solo run records
	// when issue() fails. The first non-trapped lane becomes the reference.
	ref := -1
	for k, e := range errs {
		if e != nil {
			g.finalize(g.live[k], e)
		} else if ref < 0 {
			ref = k
		}
	}
	if ref < 0 {
		// Every lane trapped on the same instruction; the gang is finished.
		g.live = g.live[:0]
		return
	}
	refLane := g.lanes[g.live[ref]]
	refOut := out[ref]

	// Shared accounting, once for the whole gang.
	g.sb.Record(tid, d, g.cycle)
	g.reserveUnit(d, g.cycle)
	if c := g.params.CompletionTime(d, g.cycle); c > g.maxCompletion {
		g.maxCompletion = c
	}
	g.stats.Instructions++
	g.stats.PerThread[tid]++
	switch d.Class {
	case isa.ClassScalar:
		g.stats.Scalar++
	case isa.ClassParallel:
		g.stats.Parallel++
	case isa.ClassReduction:
		g.stats.Reduction++
	}

	// Lanes whose control outcome diverged from the reference peel with
	// this instruction counted (they did execute it); the rest stay live.
	keep := g.liveBuf[:0]
	for k, li := range g.live {
		switch {
		case errs[k] != nil:
			// Already finalized above.
		case out[k] != refOut:
			g.peel(li)
		default:
			keep = append(keep, li)
		}
	}
	g.live, g.liveBuf = keep, g.live

	// Control flow, applied from the reference outcome — every surviving
	// lane produced the identical one.
	switch {
	case refOut.Halt:
		g.halted = true
		for t := 0; t < g.cfg.Machine.Threads; t++ {
			g.front.StopThread(t)
		}
	case refOut.Exited:
		g.front.StopThread(tid)
	case refOut.Redirect:
		resume := g.cycle + int64(g.params.ExecRedirect) - 1
		if d.Kind == isa.ExecJump && d.Jump != isa.JumpReg {
			resume = g.cycle + int64(g.params.DecodeRedirect) - 1
		}
		g.front.Redirect(tid, refOut.NextPC, resume)
	}
	if refOut.Spawned >= 0 {
		g.sb.ClearThread(refOut.Spawned)
		g.front.StartThread(refOut.Spawned, refLane.PC(refOut.Spawned), g.cycle+int64(g.params.SpawnStart)-1)
	}
}

// snapStats deep-copies the shared lockstep statistics for one departing
// lane, applying the same drain rule as Processor.finish.
func (g *Gang) snapStats() Stats {
	s := g.stats
	s.PerThread = append([]int64(nil), g.stats.PerThread...)
	s.IdleByKind = make(map[pipeline.HazardKind]int64, len(g.stats.IdleByKind))
	for k, v := range g.stats.IdleByKind {
		s.IdleByKind[k] = v
	}
	s.StallByKind = make(map[pipeline.HazardKind]int64, len(g.stats.StallByKind))
	for k, v := range g.stats.StallByKind {
		s.StallByKind[k] = v
	}
	s.Cycles = g.cycle
	if g.maxCompletion+1 > s.Cycles {
		s.Cycles = g.maxCompletion + 1
	}
	s.Fetches = g.front.Fetches
	s.Flushes = g.front.Flushes
	s.BlockDispatches = g.blockDispatches
	s.BlockFallbacks = nil
	for i, v := range g.blockFallbacks {
		if v == 0 {
			continue
		}
		if s.BlockFallbacks == nil {
			s.BlockFallbacks = make(map[string]int64, numFallbacks)
		}
		s.BlockFallbacks[fallbackReasons[i]] = v
	}
	return s
}

// peel records lane li as diverged: snapshot its architectural state and the
// gang-phase statistics so the caller can resume it solo.
func (g *Gang) peel(li int) {
	g.res[li] = LaneResult{
		Peeled:    true,
		PeelCycle: g.cycle,
		Snapshot:  g.lanes[li].Snapshot(),
		Stats:     g.snapStats(),
	}
}

// finalize records lane li's terminal result (err nil for a clean halt).
func (g *Gang) finalize(li int, err error) {
	g.res[li] = LaneResult{Err: err, Stats: g.snapStats()}
}

// finalizeLive finalizes every still-live lane with err and empties the
// live set.
func (g *Gang) finalizeLive(err error) {
	for _, li := range g.live {
		g.finalize(li, err)
	}
	g.live = g.live[:0]
}

// Run simulates until every lane has finished, peeled, or trapped, or until
// maxCycles elapse (0 = no limit).
func (g *Gang) Run(maxCycles int64) []LaneResult {
	return g.RunContext(context.Background(), maxCycles)
}

// RunContext is Run with cooperative cancellation, mirroring
// Processor.RunContext. It always returns one LaneResult per lane; lanes
// still live when the budget, context, or a deadlock ends the run finalize
// with the corresponding error. The returned slice is owned by the gang and
// is invalidated by Reset.
func (g *Gang) RunContext(ctx context.Context, maxCycles int64) []LaneResult {
	done := ctx.Done()
	nextCheck := g.cycle + cancelCheckWindow
	for {
		if maxCycles > 0 && g.cycle >= maxCycles {
			g.finalizeLive(fmt.Errorf("core: %w (limit %d)", ErrCycleLimit, maxCycles))
			return g.res
		}
		if done != nil && g.cycle >= nextCheck {
			select {
			case <-done:
				g.finalizeLive(fmt.Errorf("core: run stopped at cycle %d: %w", g.cycle, ctx.Err()))
				return g.res
			default:
			}
			nextCheck = g.cycle + cancelCheckWindow
		}
		if g.blocks != nil {
			// nextCheck only advances when the context is cancellable, so
			// it is a stop line only in that case.
			stopAt := noStop
			if done != nil {
				stopAt = nextCheck
			}
			if maxCycles > 0 && maxCycles < stopAt {
				stopAt = maxCycles
			}
			if g.runBlock(stopAt) {
				continue
			}
		}
		more, err := g.Step()
		if err != nil {
			g.finalizeLive(err)
			return g.res
		}
		if !more {
			g.finalizeLive(nil)
			return g.res
		}
	}
}

// Reset returns the gang to power-on state with every lane live, without
// reallocating the shared state planes; a reset gang behaves identically to
// a freshly constructed one. The serving pool relies on this to re-park
// gangs across batches.
func (g *Gang) Reset() {
	for _, m := range g.lanes {
		m.Reset()
	}
	g.front.Reset(g.lanes[0].Decoded())
	for tid := 0; tid < g.cfg.Machine.Threads; tid++ {
		g.sb.ClearThread(tid)
	}
	g.cycle, g.lastIssue, g.maxCompletion = 0, 0, 0
	g.halted = false
	g.cuMulFree, g.cuDivFree, g.peMulFree, g.peDivFree = 0, 0, 0, 0
	g.stats = Stats{
		PerThread:   make([]int64, g.cfg.Machine.Threads),
		IdleByKind:  make(map[pipeline.HazardKind]int64),
		StallByKind: make(map[pipeline.HazardKind]int64),
	}
	g.live = g.live[:0]
	for i := range g.lanes {
		g.live = append(g.live, i)
	}
	for i := range g.res {
		g.res[i] = LaneResult{}
	}
	g.blockDispatches = 0
	g.blockFallbacks = [numFallbacks]int64{}
}

// SetDecoded retargets every lane at a new decoded program and Resets the
// gang, like Processor.SetDecoded.
func (g *Gang) SetDecoded(dp *isa.DecodedProgram) {
	for _, m := range g.lanes {
		m.SetDecoded(dp)
	}
	if g.blocks != nil {
		g.blocks = dp.Blocks()
	}
	g.Reset()
}
