package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/machine"
)

// TestStructuralCoSimReductionStream pushes a dense stream of reductions of
// every kind through the structural network bank in lockstep with the
// instruction-level model; any value or latency disagreement fails the run.
func TestStructuralCoSimReductionStream(t *testing.T) {
	src := `
		pidx p1
		paddi p2, p1, -3
		pceq f1, p1, p1   ; all respond
		pclt f2, p1, p2   ; none (idx < idx-3 is false at width 16)
		pcgt f3, p1, s0   ; idx > 0
		rmax s1, p2
		rmin s2, p2
		rmaxu s3, p2
		rminu s4, p2
		rsum s5, p2
		ror s6, p2
		rand s7, p2
		rcount s8, f3
		rany s9, f2
		rfirst f4, f3
		rmax s10, p2 ?f3
		rsum s11, p1 ?f2
		halt
	`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, pes := range []int{1, 2, 7, 16, 33, 128} {
		p, err := New(Config{
			Machine:            machine.Config{PEs: pes, Threads: 1, Width: 16},
			Arity:              4,
			StructuralNetworks: true,
		}, prog.Insts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(100000); err != nil {
			t.Errorf("pes=%d: structural co-simulation failed: %v", pes, err)
		}
	}
}

// TestStructuralCoSimMultithreaded interleaves reductions from many threads
// through the shared pipelined units (mode bits travelling with the data),
// the exact scenario the paper pipelines the units for: "threads never
// contend for its use" (section 6.4).
func TestStructuralCoSimMultithreaded(t *testing.T) {
	src := `
		tspawn s9, work
		tspawn s9, work
		tspawn s9, work
	work:
		pidx p1
		tid s4
		li s2, 25
	loop:
		rmax s1, p1
		rsum s3, p1
		rcount s5, f0
		addi s2, s2, -1
		bnez s2, loop
		texit
	`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Machine:            machine.Config{PEs: 64, Threads: 4, Width: 16},
		Arity:              4,
		StructuralNetworks: true,
	}, prog.Insts)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run(5_000_000)
	if err != nil {
		t.Fatalf("structural co-simulation failed: %v", err)
	}
	if stats.Reduction < 4*25*3 {
		t.Errorf("only %d reductions co-simulated", stats.Reduction)
	}
}

// Property: random reduction-heavy straight-line programs pass structural
// co-simulation at random machine shapes.
func TestStructuralCoSimRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := randomStraightLine(r, 40)
		pes := 1 + r.Intn(48)
		k := 2 + r.Intn(6)
		p, err := New(Config{
			Machine:            machine.Config{PEs: pes, Threads: 1, Width: 8},
			Arity:              k,
			StructuralNetworks: true,
		}, prog)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(1_000_000); err != nil {
			t.Logf("seed %d pes %d k %d: %v", seed, pes, k, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestStructuralCoSimSMT verifies co-simulation under dual issue (only one
// reduction can enter the bank per cycle: the parallel port is single).
func TestStructuralCoSimSMT(t *testing.T) {
	p := build(t, Config{
		Machine:            machine.Config{PEs: 16, Threads: 4, Width: 16},
		Arity:              4,
		SMT:                true,
		StructuralNetworks: true,
	}, smtWorkload)
	if _, err := p.Run(5_000_000); err != nil {
		t.Fatalf("SMT structural co-simulation failed: %v", err)
	}
}
