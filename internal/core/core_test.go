package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/pipeline"
)

// paperCfg is the 16-PE, k=4 configuration of Figures 1-2: b=2, r=4.
func paperCfg(threads int) Config {
	return Config{
		Machine:    machine.Config{PEs: 16, Threads: threads, Width: 8},
		Arity:      4,
		TraceDepth: -1,
	}
}

func build(t *testing.T, cfg Config, src string) *Processor {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(cfg, prog.Insts)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Data) > 0 {
		img := make([]int64, len(prog.Data))
		for i, w := range prog.Data {
			img[i] = int64(w)
		}
		if err := p.Machine().LoadScalarMem(img); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func mustRun(t *testing.T, p *Processor) Stats {
	t.Helper()
	s, err := p.Run(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func findIssue(t *testing.T, p *Processor, op isa.Op) InstRecord {
	t.Helper()
	for _, r := range p.Trace() {
		if r.Inst.Op == op {
			return r
		}
	}
	t.Fatalf("no %v in trace", op)
	return InstRecord{}
}

func TestPipelineFillAndDrain(t *testing.T) {
	p := build(t, paperCfg(1), "nop\nhalt")
	s := mustRun(t, p)
	nop := findIssue(t, p, isa.NOP)
	halt := findIssue(t, p, isa.HALT)
	if nop.Issue != 2 {
		t.Errorf("first issue at %d, want 2 (IF, ID, SR fill)", nop.Issue)
	}
	if halt.Issue != 3 {
		t.Errorf("halt issue at %d, want 3 (back to back)", halt.Issue)
	}
	// halt completes WB at 3+3=6; total cycles = 7.
	if s.Cycles != 7 {
		t.Errorf("cycles = %d, want 7 (drain to last WB)", s.Cycles)
	}
	if s.Instructions != 2 {
		t.Errorf("instructions = %d, want 2", s.Instructions)
	}
}

// TestFig2BroadcastHazard reproduces the top diagram of Figure 2: SUB
// followed by a dependent PADD issues with zero stall thanks to EX->B1
// forwarding.
func TestFig2BroadcastHazard(t *testing.T) {
	p := build(t, paperCfg(1), `
		sub s1, s2, s3
		padd p1, p2, s1
		halt
	`)
	mustRun(t, p)
	sub := findIssue(t, p, isa.SUB)
	padd := findIssue(t, p, isa.PADD)
	if padd.Issue != sub.Issue+1 {
		t.Errorf("PADD issued at %d, want %d (zero stall)", padd.Issue, sub.Issue+1)
	}
	if padd.Stall != 0 {
		t.Errorf("PADD stall = %d, want 0", padd.Stall)
	}
}

// TestFig2ReductionHazard reproduces the middle diagram of Figure 2: RMAX
// followed by a dependent scalar SUB stalls b+r = 6 cycles.
func TestFig2ReductionHazard(t *testing.T) {
	p := build(t, paperCfg(1), `
		rmax s1, p1
		sub s2, s1, s3
		halt
	`)
	mustRun(t, p)
	b, r := p.NetworkLatencies()
	if b != 2 || r != 4 {
		t.Fatalf("b=%d r=%d, want 2, 4", b, r)
	}
	rmax := findIssue(t, p, isa.RMAX)
	sub := findIssue(t, p, isa.SUB)
	if want := rmax.Issue + int64(b+r) + 1; sub.Issue != want {
		t.Errorf("SUB issued at %d, want %d (b+r stall)", sub.Issue, want)
	}
	if sub.Stall != int64(b+r) {
		t.Errorf("SUB stall = %d, want %d", sub.Stall, b+r)
	}
	if sub.StallKind != pipeline.HazardReduction {
		t.Errorf("stall kind = %v, want reduction", sub.StallKind)
	}
}

// TestFig2BroadcastReductionHazard reproduces the bottom diagram: RMAX
// followed by a dependent PADD stalls b+r cycles.
func TestFig2BroadcastReductionHazard(t *testing.T) {
	p := build(t, paperCfg(1), `
		rmax s1, p1
		padd p2, p3, s1
		halt
	`)
	mustRun(t, p)
	b, r := p.NetworkLatencies()
	rmax := findIssue(t, p, isa.RMAX)
	padd := findIssue(t, p, isa.PADD)
	if want := rmax.Issue + int64(b+r) + 1; padd.Issue != want {
		t.Errorf("PADD issued at %d, want %d", padd.Issue, want)
	}
	if padd.StallKind != pipeline.HazardBroadcastReduction {
		t.Errorf("stall kind = %v, want broadcast-reduction", padd.StallKind)
	}
}

func TestIndependentInstructionsDontStall(t *testing.T) {
	p := build(t, paperCfg(1), `
		rmax s1, p1
		add s2, s3, s4
		padd p2, p3, p4
		rmin s5, p1
		halt
	`)
	s := mustRun(t, p)
	// Four instructions + halt, all independent: back-to-back issue.
	first := p.Trace()[0]
	for i, rec := range p.Trace() {
		if rec.Issue != first.Issue+int64(i) {
			t.Errorf("inst %d (%v) issued at %d, want %d", i, rec.Inst.Op, rec.Issue, first.Issue+int64(i))
		}
	}
	if got := s.StallByKind[pipeline.HazardReduction]; got != 0 {
		t.Errorf("reduction stalls = %d, want 0", got)
	}
}

func TestReductionResultCorrectWhileStalling(t *testing.T) {
	p := build(t, paperCfg(1), `
		pidx p1
		rmax s1, p1       ; 15
		addi s2, s1, 1    ; 16
		rsum s3, p1       ; 120
		add s4, s3, s2    ; 136
		halt
	`)
	mustRun(t, p)
	m := p.Machine()
	if got := m.Scalar(0, 1); got != 15 {
		t.Errorf("rmax = %d, want 15", got)
	}
	if got := m.Scalar(0, 4); got != 136 {
		t.Errorf("s4 = %d, want 136", got)
	}
}

func TestBranchPenalties(t *testing.T) {
	p := build(t, paperCfg(1), `
		li s1, 1
		beqz s1, skip     ; not taken: no penalty
		add s2, s1, s1
	skip:
		j after           ; decode redirect: 1 bubble
		nop
	after:
		beqz s0, end      ; taken: 3 bubbles
		nop
	end:
		halt
	`)
	mustRun(t, p)
	tr := p.Trace()
	// li@2, beqz@3 (untaken), add@4, j@5, beqz@7 (j penalty 1), halt@11.
	byOp := map[isa.Op][]int64{}
	for _, r := range tr {
		byOp[r.Inst.Op] = append(byOp[r.Inst.Op], r.Issue)
	}
	if got := byOp[isa.ADD][0]; got != 4 {
		t.Errorf("fall-through add at %d, want 4 (untaken branch: no penalty)", got)
	}
	if got := byOp[isa.J][0]; got != 5 {
		t.Errorf("j at %d, want 5", got)
	}
	// After j (decode redirect), next issue at j+2.
	if got := byOp[isa.BEQ][1]; got != 7 {
		t.Errorf("post-jump branch at %d, want 7 (jump penalty 1)", got)
	}
	// Taken branch at 7: next issue at 7+4 = 11.
	if got := byOp[isa.HALT][0]; got != 11 {
		t.Errorf("halt at %d, want 11 (taken branch penalty 3)", got)
	}
}

func TestLoopExecutesCorrectly(t *testing.T) {
	p := build(t, paperCfg(1), `
		li s1, 10
		li s2, 0
	loop:
		add s2, s2, s1
		addi s1, s1, -1
		bnez s1, loop
		halt
	`)
	mustRun(t, p)
	if got := p.Machine().Scalar(0, 2); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

// TestMultithreadingHidesReductionStalls is the paper's core claim
// (section 5): with enough threads, fine-grain multithreading eliminates
// the reduction-hazard stalls of a single thread.
func TestMultithreadingHidesReductionStalls(t *testing.T) {
	// Each worker performs a chain of dependent reductions; the reduction
	// hazard stalls a single thread b+r cycles per iteration.
	worker := `
		pidx p1
		li s2, 20
	wloop:
		rmax s1, p1
		add s3, s1, s3    ; reduction hazard
		addi s2, s2, -1
		bnez s2, wloop
		texit
	`
	results := map[int]float64{}
	for _, threads := range []int{1, 4, 16} {
		src := "\tli s1, " + itoa(threads-1) + "\n"
		src += "\tbeqz s1, work\n\tli s4, " + itoa(threads-1) + "\n"
		src += "spawnloop:\n\ttspawn s5, work\n\taddi s4, s4, -1\n\tbnez s4, spawnloop\n"
		src += "work:\n" + worker
		p := build(t, paperCfg(threads), src)
		s, err := p.Run(5_000_000)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		results[threads] = s.IPC()
	}
	if !(results[1] < results[4] && results[4] < results[16]) {
		t.Errorf("IPC should increase with threads: %v", results)
	}
	if results[16] < 0.85 {
		t.Errorf("16-thread IPC = %.3f, want near 1 (stalls hidden)", results[16])
	}
	if results[1] > 0.5 {
		t.Errorf("1-thread IPC = %.3f, expected heavy reduction stalls", results[1])
	}
}

func TestIdleAttributionReduction(t *testing.T) {
	p := build(t, paperCfg(1), `
		rmax s1, p1
		add s2, s1, s0
		halt
	`)
	s := mustRun(t, p)
	b, r := p.NetworkLatencies()
	if got := s.IdleByKind[pipeline.HazardReduction]; got != int64(b+r) {
		t.Errorf("idle cycles attributed to reduction = %d, want %d", got, b+r)
	}
}

func TestSequentialDividerStructuralHazard(t *testing.T) {
	cfg := paperCfg(2)
	src := `
		tspawn s1, work
	work:
		pdiv p1, p2, p3
		pdiv p4, p2, p3
		texit
	`
	p := build(t, cfg, src)
	s := mustRun(t, p)
	if got := s.StallByKind[pipeline.HazardStructural] + s.IdleByKind[pipeline.HazardStructural]; got == 0 {
		t.Error("two threads sharing the sequential divider should see structural stalls")
	}
}

func TestPipelinedMultiplierNoStructuralHazard(t *testing.T) {
	p := build(t, paperCfg(1), `
		pmul p1, p2, p3
		pmul p4, p5, p6
		halt
	`)
	s := mustRun(t, p)
	tr := p.Trace()
	if tr[1].Issue != tr[0].Issue+1 {
		t.Errorf("independent PMULs should issue back to back: %d then %d", tr[0].Issue, tr[1].Issue)
	}
	if got := s.StallByKind[pipeline.HazardStructural]; got != 0 {
		t.Errorf("structural stalls with pipelined multiplier = %d", got)
	}
}

func TestSequentialMultiplierConfig(t *testing.T) {
	cfg := paperCfg(1)
	cfg.SeqMul = true
	p := build(t, cfg, `
		pmul p1, p2, p3
		pmul p4, p5, p6
		halt
	`)
	mustRun(t, p)
	tr := p.Trace()
	if tr[1].Issue < tr[0].Issue+int64(p.Params().MulLatency) {
		t.Errorf("sequential multiplier: second PMUL at %d, want >= %d",
			tr[1].Issue, tr[0].Issue+int64(p.Params().MulLatency))
	}
}

func TestThreadCommunicationPipelined(t *testing.T) {
	p := build(t, Config{Machine: machine.Config{PEs: 4, Threads: 4, Width: 16}, Arity: 4}, `
		tspawn s1, worker
		li s2, 33
		tsend s1, s2
		tjoin s1
		lw s3, 0(s0)
		halt
	worker:
		trecv s1
		addi s1, s1, 9
		sw s1, 0(s0)
		texit
	`)
	mustRun(t, p)
	if got := p.Machine().Scalar(0, 3); got != 42 {
		t.Errorf("result = %d, want 42", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	cfg := paperCfg(1)
	cfg.DeadlockWindow = 500
	p := build(t, cfg, `
		trecv s1    ; nobody ever sends
		halt
	`)
	if _, err := p.Run(100000); err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("expected deadlock error, got %v", err)
	}
}

func TestCycleLimit(t *testing.T) {
	p := build(t, paperCfg(1), `
	spin:
		j spin
	`)
	if _, err := p.Run(1000); err == nil {
		t.Error("expected cycle-limit error")
	}
}

func TestTraceDepthLimit(t *testing.T) {
	cfg := paperCfg(1)
	cfg.TraceDepth = 3
	p := build(t, cfg, `
		nop
		nop
		nop
		nop
		nop
		halt
	`)
	mustRun(t, p)
	if len(p.Trace()) != 3 {
		t.Errorf("trace length = %d, want 3", len(p.Trace()))
	}
	last := p.Trace()[2]
	if last.Inst.Op != isa.HALT {
		t.Errorf("trace should keep the most recent records, last = %v", last.Inst)
	}
}

func TestSchedulerFairnessUnderContention(t *testing.T) {
	// Four threads all running independent scalar loops: rotating priority
	// should give each ~25% of issue slots.
	src := `
		tspawn s1, w
		tspawn s1, w
		tspawn s1, w
	w:
		li s2, 200
	loop:
		addi s2, s2, -1
		add s3, s3, s2
		add s4, s4, s3
		add s5, s5, s4
		bnez s2, loop
		texit
	`
	cfg := Config{Machine: machine.Config{PEs: 4, Threads: 4, Width: 16}, Arity: 4}
	p := build(t, cfg, src)
	s := mustRun(t, p)
	total := int64(0)
	for _, n := range s.PerThread {
		total += n
	}
	for tid, n := range s.PerThread {
		share := float64(n) / float64(total)
		if share < 0.15 || share > 0.35 {
			t.Errorf("thread %d issue share = %.2f, want ~0.25 (rotating priority)", tid, share)
		}
	}

	// Fixed priority on the same workload: scalar loops never stall long,
	// so thread 0 hogs the slot and finishes far more than 25%% of the
	// early issues. Compare time to first texit per policy instead: just
	// check the policy runs and total work matches.
	cfg.Scheduler = SchedFixed
	p2 := build(t, cfg, src)
	s2 := mustRun(t, p2)
	if s2.Instructions != s.Instructions {
		t.Errorf("fixed policy executed %d instructions, rotating %d; functional work must match",
			s2.Instructions, s.Instructions)
	}
}

func TestStatsConsistency(t *testing.T) {
	p := build(t, paperCfg(2), `
		tspawn s1, w
		tjoin s1
		halt
	w:
		pidx p1
		rmax s2, p1
		texit
	`)
	s := mustRun(t, p)
	perThread := int64(0)
	for _, n := range s.PerThread {
		perThread += n
	}
	if perThread != s.Instructions {
		t.Errorf("per-thread sum %d != instructions %d", perThread, s.Instructions)
	}
	if s.Scalar+s.Parallel+s.Reduction != s.Instructions {
		t.Errorf("class sum %d != instructions %d", s.Scalar+s.Parallel+s.Reduction, s.Instructions)
	}
	if s.Cycles < s.Instructions {
		t.Errorf("cycles %d < instructions %d on a single-issue machine", s.Cycles, s.Instructions)
	}
	if s.IPC() <= 0 || s.IPC() > 1 {
		t.Errorf("IPC = %f out of (0, 1]", s.IPC())
	}
}

// randomStraightLine generates a hazard-rich but trap-free straight-line
// program over parallel registers and reductions.
func randomStraightLine(r *rand.Rand, n int) []isa.Inst {
	ops := []isa.Op{
		isa.ADD, isa.SUB, isa.XOR, isa.ADDI, isa.MUL,
		isa.PADD, isa.PSUB, isa.PXOR, isa.PMUL, isa.PIDX, isa.PLI,
		isa.PCEQ, isa.PCLT, isa.FAND, isa.FNOT,
		isa.RMAX, isa.RMIN, isa.RSUM, isa.ROR, isa.RAND, isa.RCOUNT, isa.RANY, isa.RFIRST,
	}
	prog := make([]isa.Inst, 0, n+1)
	for i := 0; i < n; i++ {
		op := ops[r.Intn(len(ops))]
		in := isa.Inst{
			Op:   op,
			Rd:   uint8(r.Intn(16)),
			Ra:   uint8(r.Intn(16)),
			Rb:   uint8(r.Intn(16)),
			Mask: uint8(r.Intn(4)),
		}
		info := isa.Lookup(op)
		if info.Format == isa.FormatPR && info.SrcBKind == isa.KindParallel {
			in.SB = r.Intn(3) == 0
		}
		if info.Format == isa.FormatI || info.Format == isa.FormatPI {
			in.Imm = int32(r.Intn(100))
		}
		if info.DstKind == isa.KindFlag {
			in.Rd &= 7
		}
		if info.SrcAKind == isa.KindFlag {
			in.Ra &= 7
		}
		if info.SrcBKind == isa.KindFlag {
			in.Rb &= 7
		}
		prog = append(prog, in.Canonical())
	}
	prog = append(prog, isa.Inst{Op: isa.HALT})
	return prog
}

// Property: the pipelined, hazard-stalled processor computes exactly the
// same architectural state as the plain functional interpreter, for random
// hazard-rich straight-line programs.
func TestTimedMatchesFunctional(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := randomStraightLine(r, 60)
		mc := machine.Config{PEs: 8, Threads: 1, Width: 8}

		// Reference: direct functional execution.
		ref, err := machine.New(mc, prog)
		if err != nil {
			t.Fatal(err)
		}
		for !ref.Halted() {
			if _, err := ref.Exec(0, prog[ref.PC(0)]); err != nil {
				t.Fatal(err)
			}
		}

		// Timed simulation.
		p, err := New(Config{Machine: mc, Arity: 2}, prog)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		got := p.Machine()

		for reg := uint8(1); reg < 16; reg++ {
			if got.Scalar(0, reg) != ref.Scalar(0, reg) {
				t.Logf("seed %d: s%d = %d, want %d", seed, reg, got.Scalar(0, reg), ref.Scalar(0, reg))
				return false
			}
		}
		for pe := 0; pe < 8; pe++ {
			for reg := uint8(1); reg < 16; reg++ {
				if got.Parallel(0, pe, reg) != ref.Parallel(0, pe, reg) {
					t.Logf("seed %d: PE %d p%d mismatch", seed, pe, reg)
					return false
				}
			}
			for fl := uint8(1); fl < 8; fl++ {
				if got.Flag(0, pe, fl) != ref.Flag(0, pe, fl) {
					t.Logf("seed %d: PE %d f%d mismatch", seed, pe, fl)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: multithreaded execution of independent per-thread work yields
// the same per-thread results as running each thread's program alone.
func TestMTMatchesSingleThread(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// A worker computes a seed-dependent arithmetic series.
		k := 3 + r.Intn(7)
		src := `
			tspawn s1, w
			tspawn s2, w
			tspawn s3, w
			tjoin s1
			tjoin s2
			tjoin s3
		w:
			tid s10
			li s2, ` + itoa(k) + `
			li s3, 0
		loop:
			add s3, s3, s2
			mul s4, s3, s2
			addi s2, s2, -1
			bnez s2, loop
			texit
		`
		prog := asm.MustAssemble(src)
		mc := machine.Config{PEs: 4, Threads: 4, Width: 32}
		p, err := New(Config{Machine: mc, Arity: 4}, prog.Insts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		// Expected series value.
		sum := int64(0)
		for i := k; i >= 1; i-- {
			sum += int64(i)
		}
		for tid := 0; tid < 4; tid++ {
			// All threads exited, but their register files persist.
			if got := p.Machine().Scalar(tid, 3); got != sum {
				t.Logf("seed %d thread %d: s3 = %d, want %d", seed, tid, got, sum)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func TestDescribe(t *testing.T) {
	p := build(t, paperCfg(16), "halt")
	d := p.Describe()
	for _, frag := range []string{"16 PEs", "16 hardware threads", "b=2", "r=4"} {
		if !strings.Contains(d, frag) {
			t.Errorf("Describe missing %q:\n%s", frag, d)
		}
	}
}
