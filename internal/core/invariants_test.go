package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/pipeline"
)

// Structural invariants of the split pipeline, checked over full traces:
//
//  1. at most one instruction enters SR per cycle (single issue), or one
//     per datapath port under SMT;
//  2. per thread, issues are strictly ordered and never reorder PCs between
//     redirects (in-order per thread);
//  3. the broadcast network accepts at most one instruction per cycle (its
//     B1 stage is a single port);
//  4. each reduction unit accepts at most one operation per cycle
//     (initiation rate 1, section 6.4).

// reductionUnit maps a reduction opcode onto its hardware unit.
func reductionUnit(op isa.Op) string {
	switch op {
	case isa.ROR, isa.RAND:
		return "logic"
	case isa.RMAX, isa.RMIN, isa.RMAXU, isa.RMINU:
		return "maxmin"
	case isa.RSUM:
		return "sum"
	case isa.RCOUNT, isa.RANY:
		return "count"
	case isa.RFIRST:
		return "resolver"
	}
	return ""
}

// checkTraceInvariants validates a finished processor's trace.
func checkTraceInvariants(t *testing.T, p *Processor, smt bool) {
	t.Helper()
	params := p.Params()
	srByCycle := map[int64][]isa.Class{}
	b1ByCycle := map[int64]int{}
	unitByCycle := map[string]map[int64]int{}
	lastIssue := map[int]int64{}

	for _, rec := range p.Trace() {
		// (2) strict per-thread issue ordering.
		if last, ok := lastIssue[rec.Thread]; ok && rec.Issue <= last {
			t.Fatalf("thread %d issued at %d after issuing at %d", rec.Thread, rec.Issue, last)
		}
		lastIssue[rec.Thread] = rec.Issue

		cls := rec.Inst.Info().Class
		srByCycle[rec.Issue] = append(srByCycle[rec.Issue], cls)
		if cls != isa.ClassScalar {
			b1ByCycle[rec.Issue+1]++ // B1 is one cycle after SR
		}
		if cls == isa.ClassReduction {
			unit := reductionUnit(rec.Inst.Op)
			if unitByCycle[unit] == nil {
				unitByCycle[unit] = map[int64]int{}
			}
			// The unit accepts the op at its R1 stage.
			unitByCycle[unit][rec.Issue+int64(params.B)+2]++
		}
	}

	for cyc, classes := range srByCycle {
		if !smt && len(classes) > 1 {
			t.Fatalf("cycle %d: %d instructions in SR on a single-issue machine", cyc, len(classes))
		}
		if smt {
			if len(classes) > 2 {
				t.Fatalf("cycle %d: %d instructions in SR under 2-way SMT", cyc, len(classes))
			}
			if len(classes) == 2 && (classes[0] == isa.ClassScalar) == (classes[1] == isa.ClassScalar) {
				t.Fatalf("cycle %d: two instructions on the same SMT port", cyc)
			}
		}
	}
	for cyc, n := range b1ByCycle {
		if n > 1 {
			t.Fatalf("cycle %d: %d instructions entered the broadcast network", cyc, n)
		}
	}
	for unit, byCycle := range unitByCycle {
		for cyc, n := range byCycle {
			if n > 1 {
				t.Fatalf("cycle %d: %d operations entered the %s unit", cyc, n, unit)
			}
		}
	}
}

// mtStress builds a multithreaded reduction/parallel/scalar mix.
func mtStress(threads, iters int) string {
	var b strings.Builder
	for i := 1; i < threads; i++ {
		b.WriteString("\ttspawn s9, work\n")
	}
	b.WriteString(`
	work:
		pidx p1
		li s2, ` + itoa(iters) + `
	loop:
		rmax s1, p1
		padd p2, p2, p1
		add s3, s3, s1
		rsum s4, p2
		rcount s5, f0
		pxor p3, p3, p2
		addi s2, s2, -1
		bnez s2, loop
		texit
	`)
	return b.String()
}

func TestPipelineInvariantsSingleIssue(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		threads := 1 + r.Intn(8)
		pes := []int{4, 16, 64}[r.Intn(3)]
		p := build(t, Config{
			Machine:    machine.Config{PEs: pes, Threads: threads, Width: 16},
			Arity:      2 + r.Intn(4),
			TraceDepth: -1,
		}, mtStress(threads, 10+r.Intn(20)))
		if _, err := p.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		checkTraceInvariants(t, p, false)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineInvariantsSMT(t *testing.T) {
	p := build(t, Config{
		Machine:    machine.Config{PEs: 16, Threads: 6, Width: 16},
		Arity:      4,
		SMT:        true,
		TraceDepth: -1,
	}, mtStress(6, 25))
	if _, err := p.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	checkTraceInvariants(t, p, true)
}

// TestForwardingBoundInvariant: no consumer ever issues earlier than the
// forwarding rules allow, re-derived from the trace after the fact.
func TestForwardingBoundInvariant(t *testing.T) {
	p := build(t, Config{
		Machine:    machine.Config{PEs: 16, Threads: 1, Width: 16},
		Arity:      4,
		TraceDepth: -1,
	}, `
		pidx p1
		rmax s1, p1
		add s2, s1, s0
		padd p2, p1, s2
		rsum s3, p2
		sub s4, s3, s1
		halt
	`)
	if _, err := p.Run(100000); err != nil {
		t.Fatal(err)
	}
	params := p.Params()
	sb := pipeline.NewScoreboard(params, 1)
	for _, rec := range p.Trace() {
		d, err := isa.DecodeInst(rec.Inst)
		if err != nil {
			t.Fatalf("decode %v: %v", rec.Inst, err)
		}
		min, _ := sb.MinIssue(0, &d)
		if rec.Issue < min {
			t.Fatalf("%v issued at %d, but forwarding rules allow %d at the earliest", rec.Inst, rec.Issue, min)
		}
		sb.Record(0, &d, rec.Issue)
	}
}
