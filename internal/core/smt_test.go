package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
)

// smtWorkload: some threads run scalar loops, others parallel loops, so the
// two issue ports can be used simultaneously.
const smtWorkload = `
	tspawn s9, parwork
	tspawn s9, parwork
	tspawn s9, scalarwork
scalarwork:
	li s2, 100
sloop:
	add s3, s3, s2
	xor s4, s4, s3
	addi s2, s2, -1
	bnez s2, sloop
	texit
parwork:
	pidx p1
	li s2, 100
ploop:
	padd p2, p2, p1
	pxor p3, p3, p2
	addi s2, s2, -1
	bnez s2, ploop
	texit
`

func runSMT(t *testing.T, smt bool) Stats {
	t.Helper()
	p := build(t, Config{
		Machine: machine.Config{PEs: 16, Threads: 4, Width: 16},
		Arity:   4,
		SMT:     smt,
	}, smtWorkload)
	s, err := p.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSMTExceedsSingleIssue: with both scalar and parallel threads
// runnable, dual issue pushes IPC above 1.0 — impossible on the
// single-issue machine.
func TestSMTExceedsSingleIssue(t *testing.T) {
	single := runSMT(t, false)
	dual := runSMT(t, true)
	if single.Instructions != dual.Instructions {
		t.Fatalf("functional work differs: %d vs %d", single.Instructions, dual.Instructions)
	}
	if single.IPC() > 1.0+1e-9 {
		t.Errorf("single-issue IPC = %.3f > 1", single.IPC())
	}
	if dual.IPC() <= 1.0 {
		t.Errorf("SMT IPC = %.3f, want > 1 on mixed workload", dual.IPC())
	}
	if dual.Cycles >= single.Cycles {
		t.Errorf("SMT took %d cycles, single issue %d", dual.Cycles, single.Cycles)
	}
}

// TestSMTPortConstraint: the trace never contains two same-path
// instructions issued in the same cycle, and never more than two issues per
// cycle.
func TestSMTPortConstraint(t *testing.T) {
	cfg := Config{
		Machine:    machine.Config{PEs: 16, Threads: 4, Width: 16},
		Arity:      4,
		SMT:        true,
		TraceDepth: -1,
	}
	p := build(t, cfg, smtWorkload)
	if _, err := p.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	byCycle := map[int64][]isa.Class{}
	for _, r := range p.Trace() {
		byCycle[r.Issue] = append(byCycle[r.Issue], r.Inst.Info().Class)
	}
	for cyc, classes := range byCycle {
		if len(classes) > 2 {
			t.Fatalf("cycle %d issued %d instructions", cyc, len(classes))
		}
		if len(classes) == 2 {
			a := classes[0] == isa.ClassScalar
			b := classes[1] == isa.ClassScalar
			if a == b {
				t.Fatalf("cycle %d issued two same-path instructions (%v)", cyc, classes)
			}
		}
	}
}

// TestSMTFunctionalEquivalence: SMT execution computes the same
// architectural results as single issue.
func TestSMTFunctionalEquivalence(t *testing.T) {
	mk := func(smt bool) *Processor {
		return build(t, Config{
			Machine: machine.Config{PEs: 8, Threads: 4, Width: 16},
			Arity:   4,
			SMT:     smt,
		}, smtWorkload)
	}
	a := mk(false)
	bproc := mk(true)
	if _, err := a.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if _, err := bproc.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 4; tid++ {
		for r := uint8(1); r < 16; r++ {
			if a.Machine().Scalar(tid, r) != bproc.Machine().Scalar(tid, r) {
				t.Errorf("thread %d s%d: single %d, smt %d",
					tid, r, a.Machine().Scalar(tid, r), bproc.Machine().Scalar(tid, r))
			}
		}
	}
}

// TestSMTOnPureScalarWorkloadIsHarmless: with only one datapath in use,
// SMT cannot dual-issue and must behave exactly like single issue.
func TestSMTOnPureScalarWorkload(t *testing.T) {
	src := `
		tspawn s9, w
	w:
		li s2, 50
	loop:
		add s3, s3, s2
		addi s2, s2, -1
		bnez s2, loop
		texit
	`
	mk := func(smt bool) Stats {
		p := build(t, Config{
			Machine: machine.Config{PEs: 4, Threads: 2, Width: 16},
			Arity:   4,
			SMT:     smt,
		}, src)
		s, err := p.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	single := mk(false)
	dual := mk(true)
	if dual.Cycles != single.Cycles {
		t.Errorf("pure scalar workload: smt %d cycles != single %d", dual.Cycles, single.Cycles)
	}
	if dual.IPC() > 1.0+1e-9 {
		t.Errorf("pure scalar IPC = %.3f should stay <= 1", dual.IPC())
	}
}
