package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/machine"
)

// stripBlockCounters clears the block-plane observability counters so two
// Stats values can be compared for architectural-timing equality: the
// counters describe how the work was dispatched, not what it computed or
// when it issued, and are the only fields allowed to differ between a
// blocks-on and a blocks-off run.
func stripBlockCounters(s Stats) Stats {
	s.BlockDispatches = 0
	s.BlockFallbacks = nil
	return s
}

// blockDiffRun runs one program on a fresh processor and returns the
// processor (caller closes), its statistics, and the run error.
func blockDiffRun(t *testing.T, cfg Config, dp *isa.DecodedProgram, seed laneSeed, maxCycles int64) (*Processor, Stats, error) {
	t.Helper()
	p, err := NewDecoded(cfg, dp)
	if err != nil {
		t.Fatal(err)
	}
	seed.apply(p.Machine())
	stats, runErr := p.Run(maxCycles)
	return p, stats, runErr
}

// TestBlockDifferentialRandom is the block plane's ground-truth check:
// random forward-branching programs over all three instruction classes run
// three ways — blocks on, blocks off, and the retained pre-decode
// reference interpreter (ExecRef) stepped functionally. Blocks-on and
// blocks-off must agree EXACTLY: same cycle count, same instruction and
// idle counts, same per-kind stall attribution, and bit-identical
// architectural snapshots (stronger than the refill-tolerance the issue
// allows). Both must compute the same register state the functional
// reference does. Runs on both host engines; the serial engine fuses,
// the parallel engine dispatches blocks singleton-only.
func TestBlockDifferentialRandom(t *testing.T) {
	const budget = 2_000_000
	for _, eng := range []machine.Engine{machine.EngineSerial, machine.EngineParallel} {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			prog := gangRandomProgram(r, 2+r.Intn(10))
			dp, err := isa.DecodeProgram(prog)
			if err != nil {
				t.Fatal(err)
			}
			mc := machine.Config{PEs: 4, Threads: 1, Width: 8, Engine: eng}
			ls := newLaneSeed(r, mc.PEs)

			pOn, on, errOn := blockDiffRun(t, Config{Machine: mc, Arity: 4}, dp, ls, budget)
			defer pOn.Machine().Close()
			pOff, off, errOff := blockDiffRun(t, Config{Machine: mc, Arity: 4, Blocks: BlocksOff}, dp, ls, budget)
			defer pOff.Machine().Close()

			if (errOn == nil) != (errOff == nil) || (errOn != nil && errOn.Error() != errOff.Error()) {
				t.Errorf("engine %v seed %d: blocks-on err %v, blocks-off err %v", eng, seed, errOn, errOff)
				return false
			}
			if !reflect.DeepEqual(stripBlockCounters(on), stripBlockCounters(off)) {
				t.Errorf("engine %v seed %d: stats diverged\n on: %+v\noff: %+v", eng, seed, on, off)
				return false
			}
			if off.BlockDispatches != 0 || off.BlockFallbacks != nil {
				t.Errorf("engine %v seed %d: blocks-off run reported block counters %d/%v",
					eng, seed, off.BlockDispatches, off.BlockFallbacks)
				return false
			}
			if !bytes.Equal(pOn.Snapshot(), pOff.Snapshot()) {
				t.Errorf("engine %v seed %d: snapshots diverged", eng, seed)
				return false
			}
			if errOn == nil && on.BlockDispatches == 0 {
				// A single-threaded program with at least one instruction
				// must take the block plane at least once.
				t.Errorf("engine %v seed %d: block plane never engaged (fallbacks %v)", eng, seed, on.BlockFallbacks)
				return false
			}

			if errOn != nil {
				return true // both trapped identically; no functional reference
			}
			ref, err := machine.New(machine.Config{PEs: mc.PEs, Threads: 1, Width: mc.Width}, prog)
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			ls.apply(ref)
			steps := 0
			for !ref.Halted() {
				if _, err := ref.ExecRef(0, prog[ref.PC(0)]); err != nil {
					t.Fatalf("engine %v seed %d: reference trap: %v", eng, seed, err)
				}
				if steps++; steps > budget {
					t.Fatalf("engine %v seed %d: forward-only program did not terminate", eng, seed)
				}
			}
			for reg := uint8(1); reg < 16; reg++ {
				if pOn.Machine().Scalar(0, reg) != ref.Scalar(0, reg) {
					t.Errorf("engine %v seed %d: s%d = %d, reference %d",
						eng, seed, reg, pOn.Machine().Scalar(0, reg), ref.Scalar(0, reg))
					return false
				}
			}
			for pe := 0; pe < mc.PEs; pe++ {
				for reg := uint8(1); reg < 16; reg++ {
					if pOn.Machine().Parallel(0, pe, reg) != ref.Parallel(0, pe, reg) {
						t.Errorf("engine %v seed %d: PE %d p%d mismatch vs reference", eng, seed, pe, reg)
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Error(err)
		}
	}
}

// TestGangBlockDifferentialRandom pins the gang leg of the same property:
// four lanes with independently randomized register state run blocks-on
// and blocks-off, and every lane — lockstep completion, divergence peel,
// or trap — must come out identical: same peel decision at the same
// cycle, same error, same statistics (minus the block counters), and
// bit-identical snapshots.
func TestGangBlockDifferentialRandom(t *testing.T) {
	const lanes = 4
	const budget = 2_000_000
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := gangRandomProgram(r, 2+r.Intn(10))
		dp, err := isa.DecodeProgram(prog)
		if err != nil {
			t.Fatal(err)
		}
		mc := machine.Config{PEs: 4, Threads: 1, Width: 8}
		seeds := make([]laneSeed, lanes)
		for i := range seeds {
			seeds[i] = newLaneSeed(r, mc.PEs)
		}

		run := func(cfg Config) (*Gang, []LaneResult) {
			g, err := NewGangDecoded(cfg, dp, lanes)
			if err != nil {
				t.Fatal(err)
			}
			for i := range seeds {
				seeds[i].apply(g.Lane(i))
			}
			return g, g.Run(budget)
		}
		gOn, resOn := run(Config{Machine: mc, Arity: 4})
		gOff, resOff := run(Config{Machine: mc, Arity: 4, Blocks: BlocksOff})

		for i := range resOn {
			a, b := resOn[i], resOff[i]
			if a.Peeled != b.Peeled || a.PeelCycle != b.PeelCycle {
				t.Errorf("seed %d lane %d: peel (%v@%d) vs (%v@%d)", seed, i, a.Peeled, a.PeelCycle, b.Peeled, b.PeelCycle)
				return false
			}
			if (a.Err == nil) != (b.Err == nil) || (a.Err != nil && a.Err.Error() != b.Err.Error()) {
				t.Errorf("seed %d lane %d: err %v vs %v", seed, i, a.Err, b.Err)
				return false
			}
			if !reflect.DeepEqual(stripBlockCounters(a.Stats), stripBlockCounters(b.Stats)) {
				t.Errorf("seed %d lane %d: stats diverged\n on: %+v\noff: %+v", seed, i, a.Stats, b.Stats)
				return false
			}
			snapA, snapB := gOn.Lane(i).Snapshot(), gOff.Lane(i).Snapshot()
			if a.Peeled {
				snapA, snapB = a.Snapshot, b.Snapshot
			}
			if !bytes.Equal(snapA, snapB) {
				t.Errorf("seed %d lane %d: snapshots diverged (peeled=%v)", seed, i, a.Peeled)
				return false
			}
			if !a.Peeled && a.Err == nil && a.Stats.BlockDispatches == 0 {
				t.Errorf("seed %d lane %d: gang block plane never engaged (fallbacks %v)", seed, i, a.Stats.BlockFallbacks)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
