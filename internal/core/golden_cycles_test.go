package core_test

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/progs"
)

// TestCycleAccountingGolden pins the cycle-accurate model's timing output
// on a set of deterministic kernels: total cycles, issued instructions,
// idle cycles, and the summed stall cycles of the paper's three hazard
// classes. The golden values were recorded before the decode-plane
// refactor; any change here means the timing model moved, which a pure
// dispatch refactor must never do.
func TestCycleAccountingGolden(t *testing.T) {
	type golden struct {
		cycles, instructions, idle int64
		reductionStall             int64 // HazardReduction stall cycles
		dataStall                  int64 // HazardData stall cycles
	}
	cases := []struct {
		name string
		ins  progs.Instance
		cfg  core.Config
		want golden
	}{
		{
			name: "max-search/pes=16",
			ins:  progs.MaxSearch(16, 1),
			want: golden{cycles: 16, instructions: 4, idle: 11, reductionStall: 7, dataStall: 1},
		},
		{
			name: "mt-reduction/pes=16/threads=4",
			ins:  progs.MTReduction(16, 4, 8),
			want: golden{cycles: 203, instructions: 180, idle: 22, reductionStall: 125, dataStall: 61},
		},
		{
			name: "mt-reduction/pes=64/threads=8",
			ins:  progs.MTReduction(64, 8, 4),
			want: golden{cycles: 255, instructions: 236, idle: 18, reductionStall: 161, dataStall: 56},
		},
		{
			name: "mt-reduction/smt/pes=16/threads=4",
			ins:  progs.MTReduction(16, 4, 8),
			cfg:  core.Config{SMT: true},
			want: golden{cycles: 177, instructions: 180, idle: 24, reductionStall: 186, dataStall: 322},
		},
		{
			name: "image-sum/pes=32",
			ins:  progs.ImageSum(32, 16, 7),
			want: golden{cycles: 170, instructions: 88, idle: 81, reductionStall: 26, dataStall: 32},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := asm.Assemble(tc.ins.Source)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			cfg := tc.cfg
			threads := tc.ins.Threads
			if threads < 1 {
				threads = 1
			}
			cfg.Machine = tc.ins.MachineConfig(peCount(tc.name), threads)
			cfg.Machine.Engine = machine.EngineSerial
			p, err := core.New(cfg, prog.Insts)
			if err != nil {
				t.Fatalf("core.New: %v", err)
			}
			defer p.Machine().Close()
			if err := p.Machine().LoadLocalMem(tc.ins.LocalMem); err != nil {
				t.Fatal(err)
			}
			if err := p.Machine().LoadScalarMem(tc.ins.ScalarMem); err != nil {
				t.Fatal(err)
			}
			stats, err := p.Run(0)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if err := tc.ins.Check(p.Machine()); err != nil {
				t.Fatalf("architectural check: %v", err)
			}
			got := golden{
				cycles:         stats.Cycles,
				instructions:   stats.Instructions,
				idle:           stats.IdleCycles,
				reductionStall: stats.StallByKind[pipeline.HazardReduction],
				dataStall:      stats.StallByKind[pipeline.HazardData],
			}
			if got != tc.want {
				t.Errorf("timing drifted:\n got  %+v\n want %+v", got, tc.want)
			}
		})
	}
}

// peCount extracts the pes=N component baked into the case name, keeping
// the golden table self-describing.
func peCount(name string) int {
	var pes int
	for i := 0; i+4 <= len(name); i++ {
		if name[i:i+4] == "pes=" {
			fmt.Sscanf(name[i+4:], "%d", &pes)
			return pes
		}
	}
	panic("golden case name must contain pes=N")
}
