// Block-plane dispatch for the solo processor: when exactly one hardware
// thread is active, the per-cycle fetch/classify/pick/issue loop is
// provably equivalent to a closed form — the thread's next issue cycle is
// max(eligible, scoreboard minimum, unit-free), every cycle before it is
// idle and attributed to the first binding threshold, and the fetch unit
// serves only that thread. runBlock exploits this to dispatch a whole
// basic block (isa.BuildBlocks) per entry: singleton micro-ops issue via
// the closed form, and fused superinstructions execute in one
// machine.ExecFused call with per-constituent accounting replayed at
// their back-to-back issue cycles. Every counter the generic path
// maintains (cycles, stalls by kind, idle by kind, fetches, contention,
// completion drain) is updated identically, so the golden cycle tests
// hold with the block plane on or off.
//
// The dispatcher falls back to the generic Step — counting why — at
// every surface the closed form does not cover: more than one active
// thread, an empty instruction buffer (redirect/refill), a pc outside
// every block (terminators: control flow and thread management), and a
// pending deadlock-window expiry (the per-cycle path owns that error).
// Architectural traps need no fallback: the closed form stops exactly
// where the generic path would, with the trapping op popped but not
// recorded.
//
// This file is in the hot-path lint set: dispatch keys on precomputed
// micro-op selector fields only.
package core

import (
	"repro/internal/isa"
	"repro/internal/pipeline"
)

// BlocksMode selects whether the block-dispatch tier may engage.
type BlocksMode uint8

const (
	// BlocksAuto (default) dispatches block-at-a-time whenever the
	// configuration and the dynamic thread population allow it.
	BlocksAuto BlocksMode = iota
	// BlocksOff forces the per-cycle path everywhere (A/B baseline).
	BlocksOff
)

// String renders the mode for configuration fingerprints.
func (m BlocksMode) String() string {
	if m == BlocksOff {
		return "off"
	}
	return "auto"
}

// Block-dispatch fallback reasons, indexing the fixed counter array so
// the dispatcher itself never touches a map.
const (
	fbMultithread = iota // more than one thread active: lockstep closed form invalid
	fbRefill             // instruction buffer empty: redirect resolving or fetch catching up
	fbBoundary           // pc outside every block: a terminator owns this issue
	fbWindow             // deadlock window would expire inside the span
	numFallbacks
)

// fallbackReasons names the counters for Stats.BlockFallbacks and the
// asc_sim_block_fallbacks_total metric labels.
var fallbackReasons = [numFallbacks]string{"multithread", "refill", "boundary", "window"}

// soleState classifies the thread population for the block gate.
type soleState uint8

const (
	soleNone soleState = iota // no runnable thread (drain): fall back silently
	soleOne                   // exactly one thread active in machine and front end
	soleMany                  // anything else: per-cycle path required
)

// soleActive finds the single active thread, if there is exactly one.
// The closed form needs the machine view (idle attribution, anyActive)
// and the front-end view (fetch arbitration) to agree on one thread.
func (p *Processor) soleActive() (int, soleState) {
	tid, nm, nf := -1, 0, 0
	for t := 0; t < p.cfg.Machine.Threads; t++ {
		ma := p.mach.ThreadActive(t)
		fa := p.front.Active(t)
		if ma {
			nm++
		}
		if fa {
			nf++
		}
		if ma && fa {
			tid = t
		}
		if nm > 1 || nf > 1 {
			return -1, soleMany
		}
	}
	if tid >= 0 && nm == 1 && nf == 1 {
		return tid, soleOne
	}
	// At most one thread on each side but no agreement: a drain or
	// half-stopped state (e.g. post-HALT completion wind-down) that the
	// generic path owns; not a multithread decline.
	return -1, soleNone
}

// blockStep is the outcome of dispatching one in-block micro-op.
type blockStep uint8

const (
	stepIssued  blockStep = iota // issued; cycle advanced past the issue cycle
	stepStopped                  // stopAt reached first; cycle == stopAt
	stepNoHead                   // buffer empty mid-block; nothing changed
	stepBail                     // deadlock window pending; nothing changed
)

// noStop is the stopAt value meaning "no stop line": the dispatcher may
// skip arbitrarily far ahead (the deadlock window still bounds any one
// idle span).
const noStop = int64(^uint64(0) >> 1)

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// accountGap replays the idle attribution for cycles [p.cycle, until):
// exactly what the generic path records when the sole active thread is
// the best blocker, segment by binding threshold in classification order
// (fetch eligibility, then the scoreboard's binding hazard, then the
// sequential unit).
func (p *Processor) accountGap(eligible, minIssue int64, kind pipeline.HazardKind, free, until int64) {
	c := p.cycle
	if e := min64(until, eligible); e > c {
		p.stats.IdleCycles += e - c
		p.stats.IdleByKind[pipeline.HazardFetch] += e - c
		c = e
	}
	if m := min64(until, minIssue); m > c {
		p.stats.IdleCycles += m - c
		p.stats.IdleByKind[kind] += m - c
		c = m
	}
	if f := min64(until, free); f > c {
		p.stats.IdleCycles += f - c
		p.stats.IdleByKind[pipeline.HazardStructural] += f - c
	}
}

// dispatchOne issues the head micro-op of tid at the earliest legal
// cycle, replaying idle, stall, and fetch accounting for every skipped
// cycle. On a trap the processor is left exactly where the generic path
// leaves it: op popped, stall recorded, cycle at the issue cycle,
// nothing else updated.
func (p *Processor) dispatchOne(tid int, stopAt int64) (blockStep, error) {
	head, ok := p.front.Head(tid)
	if !ok {
		return stepNoHead, nil
	}
	d := head.D
	eligible := head.EligibleAt()
	minIssue, kind := p.sb.MinIssue(tid, d)
	free := p.unitFreeAt(d)
	issueC := p.cycle
	if eligible > issueC {
		issueC = eligible
	}
	if minIssue > issueC {
		issueC = minIssue
	}
	if free > issueC {
		issueC = free
	}
	if issueC >= stopAt {
		// The issue lands at or past the stop cycle: account the idle
		// prefix up to stopAt and leave the op buffered.
		if stopAt-1-p.lastIssue > p.cfg.DeadlockWindow {
			return stepBail, nil
		}
		p.accountGap(eligible, minIssue, kind, free, stopAt)
		p.front.FetchRun(tid, p.cycle, stopAt-1)
		p.cycle = stopAt
		return stepStopped, nil
	}
	if issueC-1-p.lastIssue > p.cfg.DeadlockWindow {
		// The generic path would raise the deadlock error inside this
		// idle span; let it.
		return stepBail, nil
	}
	if issueC > p.cycle {
		p.accountGap(eligible, minIssue, kind, free, issueC)
		p.front.FetchRun(tid, p.cycle, issueC-1)
		p.cycle = issueC
	}

	// Issue at issueC, replicating Processor.issue for an in-block op
	// (never a control-flow, thread, or blocking micro-op).
	p.front.PopHead(tid)
	stall := issueC - eligible
	if stall > 0 {
		k := kind
		if minIssue <= eligible {
			switch {
			case free > eligible:
				k = pipeline.HazardStructural
			default:
				k = pipeline.HazardNone
			}
		}
		if k != pipeline.HazardNone {
			p.stats.StallByKind[k] += stall
		}
	}
	if _, err := p.mach.ExecDecoded(tid, d); err != nil {
		return stepIssued, err
	}
	p.sb.Record(tid, d, issueC)
	p.reserveUnit(d, issueC)
	if c := p.params.CompletionTime(d, issueC); c > p.maxCompletion {
		p.maxCompletion = c
	}
	p.stats.Instructions++
	p.stats.PerThread[tid]++
	switch d.Class {
	case isa.ClassScalar:
		p.stats.Scalar++
	case isa.ClassParallel:
		p.stats.Parallel++
	case isa.ClassReduction:
		p.stats.Reduction++
	}
	p.lastIssue = issueC
	if p.cfg.Scheduler != SchedFixed {
		p.front.MarkPicked(tid)
	}
	p.front.FetchRun(tid, issueC, issueC)
	p.cycle = issueC + 1
	return stepIssued, nil
}

// fusedStatus is the outcome of attempting a fused superinstruction.
type fusedStatus uint8

const (
	fusedDone fusedStatus = iota // all constituents issued back to back
	fusedFall                    // preconditions unmet; dispatch constituents singly
)

// dispatchFused issues a fused superinstruction in one machine call when
// the closed form can prove the generic path would issue its
// constituents back to back: every constituent buffered and eligible at
// its staggered cycle, no external scoreboard dependence binding later
// (in-group dependences sustain one-cycle stagger by the fusion-set
// construction — see isa/blocks.go), and the whole group inside the stop
// window. Anything unproven falls back to singleton dispatch, which is
// always exact.
func (p *Processor) dispatchFused(tid int, bo *isa.BlockOp, stopAt int64) fusedStatus {
	k := len(bo.Ops)
	head, ok := p.front.Head(tid)
	if !ok || head.PC != bo.PC {
		return fusedFall
	}
	d0 := bo.Ops[0]
	eligible := head.EligibleAt()
	minIssue, kind := p.sb.MinIssue(tid, d0)
	issueC := p.cycle
	if eligible > issueC {
		issueC = eligible
	}
	if minIssue > issueC {
		issueC = minIssue
	}
	// Fusible ops never use a sequential unit (no mul/div), so free == 0.
	if issueC+int64(k) > stopAt {
		return fusedFall
	}
	if issueC-1-p.lastIssue > p.cfg.DeadlockWindow {
		return fusedFall
	}
	for j := 1; j < k; j++ {
		e, ok := p.front.Entry(tid, j)
		if !ok || e.PC != bo.PC+j {
			return fusedFall
		}
		if e.EligibleAt() > issueC+int64(j) {
			return fusedFall
		}
		// External dependences only; in-group producers (recorded below)
		// are always satisfied at stagger 1.
		if ext, _ := p.sb.MinIssue(tid, bo.Ops[j]); ext > issueC+int64(j) {
			return fusedFall
		}
	}

	if issueC > p.cycle {
		p.accountGap(eligible, minIssue, kind, 0, issueC)
		p.front.FetchRun(tid, p.cycle, issueC-1)
		p.cycle = issueC
	}

	// One architectural call for the whole superinstruction (accounting
	// below reads no machine state), then the per-constituent issue
	// bookkeeping at cycles issueC..issueC+k-1, exactly as the generic
	// path would have recorded it.
	p.mach.ExecFused(tid, bo.Ops)
	for j := 0; j < k; j++ {
		c := issueC + int64(j)
		h := p.front.PopHead(tid)
		d := bo.Ops[j]
		mi, kd := p.sb.MinIssue(tid, d)
		if stall := c - h.EligibleAt(); stall > 0 {
			k2 := kd
			if mi <= h.EligibleAt() {
				k2 = pipeline.HazardNone // no sequential units in a fused group
			}
			if k2 != pipeline.HazardNone {
				p.stats.StallByKind[k2] += stall
			}
		}
		p.sb.Record(tid, d, c)
		if ct := p.params.CompletionTime(d, c); ct > p.maxCompletion {
			p.maxCompletion = ct
		}
		p.stats.Instructions++
		p.stats.PerThread[tid]++
		switch d.Class {
		case isa.ClassParallel:
			p.stats.Parallel++
		case isa.ClassReduction:
			p.stats.Reduction++
		}
		p.lastIssue = c
		if p.cfg.Scheduler != SchedFixed {
			p.front.MarkPicked(tid)
		}
		p.front.FetchRun(tid, c, c)
	}
	p.cycle = issueC + int64(k)
	return fusedDone
}

// runBlock dispatches from the sole active thread's current block until
// the block ends, stopAt is reached, or a fallback surface appears. It
// reports whether it made progress; ran=false means the caller must take
// a generic Step.
func (p *Processor) runBlock(stopAt int64) (ran bool, err error) {
	tid, st := p.soleActive()
	if st != soleOne {
		if st == soleMany {
			p.blockFallbacks[fbMultithread]++
		}
		return false, nil
	}
	head, ok := p.front.Head(tid)
	if !ok {
		p.blockFallbacks[fbRefill]++
		return false, nil
	}
	blk, opIdx, sub, ok := p.blocks.Lookup(head.PC)
	if !ok {
		p.blockFallbacks[fbBoundary]++
		return false, nil
	}
	p.blockDispatches++

	progressed := false
	for oi := opIdx; oi < len(blk.Ops); oi++ {
		bo := &blk.Ops[oi]
		if len(bo.Ops) > 1 && sub == 0 && p.blockFuse {
			if p.dispatchFused(tid, bo, stopAt) == fusedDone {
				progressed = true
				continue
			}
		}
		for ci := sub; ci < len(bo.Ops); ci++ {
			step, err := p.dispatchOne(tid, stopAt)
			if err != nil {
				return true, err
			}
			switch step {
			case stepIssued:
				progressed = true
			case stepStopped:
				return true, nil // idle prefix accounted: that is progress
			case stepNoHead:
				if progressed {
					return true, nil
				}
				p.blockFallbacks[fbRefill]++
				return false, nil
			case stepBail:
				if progressed {
					return true, nil
				}
				p.blockFallbacks[fbWindow]++
				return false, nil
			}
		}
		sub = 0
	}
	return true, nil
}
