package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/machine"
)

// gangRandomProgram is randomBranchyProgram widened with reductions (incl.
// the non-associative saturating RSUM), flag ops, and parallel immediates,
// so lockstep divergence checks see every pipeline class. Control flow only
// moves forward, so every generated program halts.
func gangRandomProgram(r *rand.Rand, blocks int) []isa.Inst {
	var prog []isa.Inst
	type patch struct {
		at     int
		target int
	}
	var patches []patch
	blockStart := make([]int, blocks+1)

	aluOps := []isa.Op{isa.ADD, isa.SUB, isa.XOR, isa.AND, isa.OR}
	redOps := []isa.Op{isa.RSUM, isa.RMAX, isa.RMIN, isa.ROR, isa.RCOUNT, isa.RANY}
	branchOps := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU}

	for bi := 0; bi < blocks; bi++ {
		blockStart[bi] = len(prog)
		n := 1 + r.Intn(4)
		for i := 0; i < n; i++ {
			switch r.Intn(5) {
			case 0:
				prog = append(prog, isa.Inst{
					Op: aluOps[r.Intn(len(aluOps))],
					Rd: uint8(1 + r.Intn(15)), Ra: uint8(r.Intn(16)), Rb: uint8(r.Intn(16)),
				})
			case 1:
				prog = append(prog, isa.Inst{
					Op: isa.ADDI, Rd: uint8(1 + r.Intn(15)), Ra: uint8(r.Intn(16)),
					Imm: int32(r.Intn(64)),
				})
			case 2:
				prog = append(prog, isa.Inst{
					Op: isa.PADD, Rd: uint8(1 + r.Intn(15)), Ra: uint8(r.Intn(16)),
					Rb: uint8(r.Intn(16)), SB: r.Intn(2) == 0,
				})
			case 3:
				op := redOps[r.Intn(len(redOps))]
				in := isa.Inst{Op: op, Rd: uint8(1 + r.Intn(15)), Ra: uint8(r.Intn(16))}
				if isa.Lookup(op).SrcAKind == isa.KindFlag {
					in.Ra &= 7
				}
				prog = append(prog, in.Canonical())
			default:
				prog = append(prog, isa.Inst{
					Op: isa.PCLT, Rd: uint8(r.Intn(8)), Ra: uint8(r.Intn(16)),
					Rb: uint8(r.Intn(16)),
				}.Canonical())
			}
		}
		if bi < blocks-1 {
			target := bi + 1 + r.Intn(blocks-bi-1) + 1
			if target > blocks {
				target = blocks
			}
			switch r.Intn(3) {
			case 0:
				prog = append(prog, isa.Inst{
					Op: branchOps[r.Intn(len(branchOps))],
					Rd: uint8(r.Intn(16)), Ra: uint8(r.Intn(16)),
				})
				patches = append(patches, patch{at: len(prog) - 1, target: target})
			case 1:
				prog = append(prog, isa.Inst{Op: isa.J})
				patches = append(patches, patch{at: len(prog) - 1, target: target})
			}
		}
	}
	blockStart[blocks] = len(prog)
	prog = append(prog, isa.Inst{Op: isa.HALT})
	for _, p := range patches {
		prog[p.at].Imm = int32(blockStart[p.target])
	}
	return prog
}

// laneSeed is one lane's randomized architectural input: scalar registers
// s1..s7 of thread 0 and parallel registers p1..p3 of every PE.
type laneSeed struct {
	sregs [7]int64
	pregs [3][]int64
}

func newLaneSeed(r *rand.Rand, pes int) laneSeed {
	var s laneSeed
	for i := range s.sregs {
		s.sregs[i] = int64(r.Intn(256))
	}
	for i := range s.pregs {
		s.pregs[i] = make([]int64, pes)
		for pe := range s.pregs[i] {
			s.pregs[i][pe] = int64(r.Intn(256))
		}
	}
	return s
}

func (s laneSeed) apply(m *machine.Machine) {
	for i, v := range s.sregs {
		m.SetScalar(0, uint8(i+1), v)
	}
	for i := range s.pregs {
		for pe, v := range s.pregs[i] {
			m.SetParallel(0, pe, uint8(i+1), v)
		}
	}
}

// soloRun runs one lane's inputs on an ordinary solo processor and returns
// its terminal snapshot, statistics, and error.
func soloRun(t *testing.T, cfg Config, dp *isa.DecodedProgram, seed laneSeed, maxCycles int64) ([]byte, Stats, error) {
	t.Helper()
	p, err := NewDecoded(cfg, dp)
	if err != nil {
		t.Fatal(err)
	}
	seed.apply(p.Machine())
	stats, runErr := p.Run(maxCycles)
	return p.Snapshot(), stats, runErr
}

// continuePeeled resumes a peeled lane's snapshot on a solo processor and
// returns the final snapshot.
func continuePeeled(t *testing.T, cfg Config, dp *isa.DecodedProgram, snap []byte, maxCycles int64) []byte {
	t.Helper()
	p, err := NewDecoded(cfg, dp)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(maxCycles); err != nil {
		t.Fatalf("peeled continuation: %v", err)
	}
	return p.Snapshot()
}

// TestGangMatchesSoloRandom is the gang correctness pin: random forward-
// branching programs over all three instruction classes, four lanes with
// independently randomized register state. Whatever path a lane takes out
// of the gang — lockstep completion, divergence peel, or trap — its final
// architectural state must be bit-identical to a solo run, and lanes that
// complete in lockstep must report statistics identical to solo.
func TestGangMatchesSoloRandom(t *testing.T) {
	const lanes = 4
	const budget = 2_000_000
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := gangRandomProgram(r, 2+r.Intn(10))
		dp, err := isa.DecodeProgram(prog)
		if err != nil {
			t.Fatal(err)
		}
		mc := machine.Config{PEs: 4, Threads: 1, Width: 8}
		cfg := Config{Machine: mc, Arity: 4}

		seeds := make([]laneSeed, lanes)
		soloSnaps := make([][]byte, lanes)
		soloStats := make([]Stats, lanes)
		soloErrs := make([]error, lanes)
		for i := range seeds {
			seeds[i] = newLaneSeed(r, mc.PEs)
			soloSnaps[i], soloStats[i], soloErrs[i] = soloRun(t, cfg, dp, seeds[i], budget)
		}

		g, err := NewGangDecoded(cfg, dp, lanes)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seeds {
			seeds[i].apply(g.Lane(i))
		}
		res := g.Run(budget)

		for i, lr := range res {
			if lr.Peeled {
				got := continuePeeled(t, cfg, dp, lr.Snapshot, budget)
				if !bytes.Equal(got, soloSnaps[i]) {
					t.Errorf("seed %d lane %d: peeled continuation snapshot differs from solo", seed, i)
					return false
				}
				continue
			}
			if (lr.Err == nil) != (soloErrs[i] == nil) {
				t.Errorf("seed %d lane %d: gang err %v, solo err %v", seed, i, lr.Err, soloErrs[i])
				return false
			}
			if lr.Err != nil && lr.Err.Error() != soloErrs[i].Error() {
				t.Errorf("seed %d lane %d: gang err %q, solo err %q", seed, i, lr.Err, soloErrs[i])
				return false
			}
			if !bytes.Equal(g.Lane(i).Snapshot(), soloSnaps[i]) {
				t.Errorf("seed %d lane %d: lockstep snapshot differs from solo", seed, i)
				return false
			}
			if lr.Err == nil && !reflect.DeepEqual(lr.Stats, soloStats[i]) {
				t.Errorf("seed %d lane %d: gang stats %+v, solo stats %+v", seed, i, lr.Stats, soloStats[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func buildGangAsm(t *testing.T, cfg Config, src string, lanes int) (*Gang, *isa.DecodedProgram) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := isa.DecodeProgram(prog.Insts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGangDecoded(cfg, dp, lanes)
	if err != nil {
		t.Fatal(err)
	}
	return g, dp
}

// TestGangDivergencePeel forces a mid-program branch divergence: lane 1
// loads a different word and takes the other branch arm. The divergent lane
// must peel and, resumed solo from its snapshot, finish bit-identical to a
// never-ganged run; the surviving lanes must be completely unaffected
// (snapshots AND statistics identical to solo).
func TestGangDivergencePeel(t *testing.T) {
	const src = `
		lw s1, 0(s0)
		bnez s1, big
		addi s2, s0, 5
		j fin
	big:
		addi s2, s0, 9
	fin:
		rsum s3, p1
		sw s2, 1(s0)
		halt
	`
	mc := machine.Config{PEs: 4, Threads: 1, Width: 16}
	cfg := Config{Machine: mc, Arity: 4}
	const lanes = 4
	g, dp := buildGangAsm(t, cfg, src, lanes)

	mems := [lanes][]int64{{0}, {1}, {0}, {0}}
	soloSnaps := make([][]byte, lanes)
	soloStats := make([]Stats, lanes)
	for i := 0; i < lanes; i++ {
		p, err := NewDecoded(cfg, dp)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Machine().LoadScalarMem(mems[i]); err != nil {
			t.Fatal(err)
		}
		soloStats[i], err = p.Run(100000)
		if err != nil {
			t.Fatal(err)
		}
		soloSnaps[i] = p.Snapshot()

		if err := g.Lane(i).LoadScalarMem(mems[i]); err != nil {
			t.Fatal(err)
		}
	}

	res := g.Run(100000)
	if !res[1].Peeled {
		t.Fatalf("lane 1 (divergent branch) not peeled: %+v", res[1])
	}
	got := continuePeeled(t, cfg, dp, res[1].Snapshot, 100000)
	if !bytes.Equal(got, soloSnaps[1]) {
		t.Error("peeled lane 1 continuation differs from solo run")
	}
	for _, i := range []int{0, 2, 3} {
		if res[i].Peeled || res[i].Err != nil {
			t.Fatalf("surviving lane %d: %+v", i, res[i])
		}
		if !bytes.Equal(g.Lane(i).Snapshot(), soloSnaps[i]) {
			t.Errorf("surviving lane %d snapshot differs from solo", i)
		}
		if !reflect.DeepEqual(res[i].Stats, soloStats[i]) {
			t.Errorf("surviving lane %d stats %+v, solo %+v", i, res[i].Stats, soloStats[i])
		}
	}
}

// TestGangTrapFinalizes pins solo trap semantics inside a gang: a lane that
// traps reports the identical error and identical statistics to a solo run
// (the trapping instruction is not counted), and the other lanes finish
// untouched.
func TestGangTrapFinalizes(t *testing.T) {
	const src = `
		lw s1, 0(s0)
		lw s2, 0(s1)
		halt
	`
	mc := machine.Config{PEs: 4, Threads: 1, Width: 32}
	cfg := Config{Machine: mc, Arity: 4}
	g, dp := buildGangAsm(t, cfg, src, 2)

	mems := [2][]int64{{1}, {1 << 20}} // lane 1's second load is out of range
	soloSnaps := make([][]byte, 2)
	soloStats := make([]Stats, 2)
	soloErrs := make([]error, 2)
	for i := 0; i < 2; i++ {
		p, err := NewDecoded(cfg, dp)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Machine().LoadScalarMem(mems[i]); err != nil {
			t.Fatal(err)
		}
		soloStats[i], soloErrs[i] = p.Run(100000)
		soloSnaps[i] = p.Snapshot()
		if err := g.Lane(i).LoadScalarMem(mems[i]); err != nil {
			t.Fatal(err)
		}
	}
	if soloErrs[1] == nil {
		t.Fatal("lane 1 solo run did not trap; test is vacuous")
	}

	res := g.Run(100000)
	if res[1].Err == nil || res[1].Err.Error() != soloErrs[1].Error() {
		t.Errorf("lane 1 gang err %v, solo err %v", res[1].Err, soloErrs[1])
	}
	if !reflect.DeepEqual(res[1].Stats, soloStats[1]) {
		t.Errorf("trapped lane stats %+v, solo %+v", res[1].Stats, soloStats[1])
	}
	if res[0].Err != nil || res[0].Peeled {
		t.Fatalf("lane 0: %+v", res[0])
	}
	for i := 0; i < 2; i++ {
		if !bytes.Equal(g.Lane(i).Snapshot(), soloSnaps[i]) {
			t.Errorf("lane %d snapshot differs from solo", i)
		}
	}
}

// TestGangTrapLowestPE pins the lowest-PE trap rule through the gang path:
// when several PEs trap on one parallel memory op, the reported PE must be
// the lowest — identical to solo — in every lane.
func TestGangTrapLowestPE(t *testing.T) {
	const src = `
		plw p2, 0(p1)
		halt
	`
	mc := machine.Config{PEs: 4, Threads: 1, Width: 32, LocalMemWords: 16}
	cfg := Config{Machine: mc, Arity: 4}
	g, dp := buildGangAsm(t, cfg, src, 2)

	// Lane 0 is clean; lane 1 has bad addresses in PEs 1 and 3.
	for i := 0; i < 2; i++ {
		if i == 1 {
			g.Lane(i).SetParallel(0, 1, 1, 9999)
			g.Lane(i).SetParallel(0, 3, 1, 8888)
		}
	}
	p, err := NewDecoded(cfg, dp)
	if err != nil {
		t.Fatal(err)
	}
	p.Machine().SetParallel(0, 1, 1, 9999)
	p.Machine().SetParallel(0, 3, 1, 8888)
	_, soloErr := p.Run(100000)
	if soloErr == nil {
		t.Fatal("solo run did not trap; test is vacuous")
	}

	res := g.Run(100000)
	if res[1].Err == nil || res[1].Err.Error() != soloErr.Error() {
		t.Errorf("lane 1 gang err %v, solo err %v", res[1].Err, soloErr)
	}
	if res[0].Err != nil {
		t.Errorf("clean lane 0 err: %v", res[0].Err)
	}
}

// TestGangBlockingDivergencePeel exercises the pre-issue divergence check:
// two lanes send their first interthread message to different workers (the
// target is data-dependent), so one lane's worker has mail while the
// other's mailbox is empty at the same TRECV — a blocked-status mismatch
// with no prior Outcome divergence. The minority lane must peel before the
// TRECV executes and still finish bit-identical to solo.
func TestGangBlockingDivergencePeel(t *testing.T) {
	const src = `
		lw s3, 0(s0)
		tspawn s1, w1
		tspawn s2, w2
		li s5, 1
		sub s6, s5, s3
		add s7, s1, s3
		add s8, s1, s6
		li s4, 77
		tsend s7, s4
		li s4, 88
		tsend s8, s4
		tjoin s1
		tjoin s2
		halt
	w1:
		trecv s1
		sw s1, 2(s0)
		texit
	w2:
		trecv s1
		sw s1, 3(s0)
		texit
	`
	mc := machine.Config{PEs: 4, Threads: 4, Width: 16}
	cfg := Config{Machine: mc, Arity: 4}
	g, dp := buildGangAsm(t, cfg, src, 2)

	mems := [2][]int64{{0}, {1}}
	soloSnaps := make([][]byte, 2)
	for i := 0; i < 2; i++ {
		p, err := NewDecoded(cfg, dp)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Machine().LoadScalarMem(mems[i]); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(100000); err != nil {
			t.Fatal(err)
		}
		soloSnaps[i] = p.Snapshot()
		if err := g.Lane(i).LoadScalarMem(mems[i]); err != nil {
			t.Fatal(err)
		}
	}

	res := g.Run(100000)
	if !res[1].Peeled {
		t.Fatalf("lane 1 (divergent mailbox) not peeled: %+v", res[1])
	}
	got := continuePeeled(t, cfg, dp, res[1].Snapshot, 100000)
	if !bytes.Equal(got, soloSnaps[1]) {
		t.Error("peeled lane 1 continuation differs from solo run")
	}
	if res[0].Err != nil || res[0].Peeled {
		t.Fatalf("lane 0: %+v", res[0])
	}
	if !bytes.Equal(g.Lane(0).Snapshot(), soloSnaps[0]) {
		t.Error("lane 0 snapshot differs from solo")
	}
}

// TestGangResetReuse pins the pool contract: a Reset gang re-runs the same
// inputs to bit-identical results without reallocating its state planes.
func TestGangResetReuse(t *testing.T) {
	const src = `
		lw s1, 0(s0)
		rsum s2, p1
		add s3, s1, s2
		sw s3, 1(s0)
		halt
	`
	mc := machine.Config{PEs: 4, Threads: 1, Width: 16}
	cfg := Config{Machine: mc, Arity: 4}
	g, _ := buildGangAsm(t, cfg, src, 3)

	load := func() {
		for i := 0; i < 3; i++ {
			if err := g.Lane(i).LoadScalarMem([]int64{int64(10 * (i + 1))}); err != nil {
				t.Fatal(err)
			}
			g.Lane(i).SetParallel(0, 0, 1, int64(i+1))
		}
	}
	load()
	res := g.Run(100000)
	first := make([][]byte, 3)
	for i := 0; i < 3; i++ {
		if res[i].Err != nil || res[i].Peeled {
			t.Fatalf("run 1 lane %d: %+v", i, res[i])
		}
		first[i] = g.Lane(i).Snapshot()
	}

	g.Reset()
	if g.LiveLanes() != 3 {
		t.Fatalf("live lanes after Reset = %d, want 3", g.LiveLanes())
	}
	load()
	res = g.Run(100000)
	for i := 0; i < 3; i++ {
		if res[i].Err != nil || res[i].Peeled {
			t.Fatalf("run 2 lane %d: %+v", i, res[i])
		}
		if !bytes.Equal(g.Lane(i).Snapshot(), first[i]) {
			t.Errorf("lane %d: second run after Reset differs from first", i)
		}
	}
}

// TestGangRejectsUnsupported pins the constructor's exclusions.
func TestGangRejectsUnsupported(t *testing.T) {
	dp, err := isa.DecodeProgram([]isa.Inst{{Op: isa.HALT}})
	if err != nil {
		t.Fatal(err)
	}
	mc := machine.Config{PEs: 4, Threads: 2, Width: 8}
	cases := []struct {
		name string
		cfg  Config
		n    int
		want string
	}{
		{"smt", Config{Machine: mc, SMT: true}, 2, "SMT"},
		{"trace", Config{Machine: mc, TraceDepth: -1}, 2, "tracing"},
		{"structural", Config{Machine: mc, StructuralNetworks: true}, 2, "structural"},
		{"zero lanes", Config{Machine: mc}, 0, "lane"},
	}
	for _, tc := range cases {
		if _, err := NewGangDecoded(tc.cfg, dp, tc.n); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestGangStepZeroAlloc extends the zero-allocation guarantee to the gang
// cycle loop: once a gang is checked out and warm, Step must not allocate.
func TestGangStepZeroAlloc(t *testing.T) {
	const src = `
		li s1, 30000
	loop:
		rsum s2, p1
		padd p2, p2, s2
		addi s1, s1, -1
		bnez s1, loop
		halt
	`
	mc := machine.Config{PEs: 16, Threads: 2, Width: 8, LocalMemWords: 64}
	cfg := Config{Machine: mc, Arity: 4}
	g, _ := buildGangAsm(t, cfg, src, 8)

	for i := 0; i < 500; i++ {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(2000, func() {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("gang Step allocates %.2f/cycle, want 0", avg)
	}
}
