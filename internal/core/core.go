// Package core is the cycle-accurate simulator of the Multithreaded
// Associative SIMD (MTASC) processor — the paper's primary contribution.
// It combines the functional machine (internal/machine), the control-unit
// front end (internal/cu), the split-pipeline timing model and scoreboard
// (internal/pipeline), and the pipelined broadcast/reduction network
// latencies (internal/network).
//
// Each simulated cycle: the scheduler picks one ready hardware thread by
// rotating priority and issues its next instruction into the split pipeline;
// the fetch unit fetches one instruction into a thread's buffer. A thread is
// ready when its next instruction is fetched and decoded, all register
// dependences are satisfiable by forwarding (scoreboard), any sequential
// functional unit it needs is free, and it is not blocked on interthread
// synchronization. Stall and idle cycles are attributed to the paper's
// hazard classes (broadcast, reduction, broadcast-reduction) plus data,
// structural, control, sync, and fetch causes.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/cu"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/network"
	"repro/internal/pipeline"
)

// SchedulerPolicy selects the issue-arbitration policy.
type SchedulerPolicy uint8

const (
	// SchedRotating is the paper's rotating-priority policy (fair).
	SchedRotating SchedulerPolicy = iota
	// SchedFixed always prefers the lowest-numbered ready thread
	// (ablation baseline; starves high-numbered threads).
	SchedFixed
)

// Config configures a simulated processor.
type Config struct {
	Machine machine.Config

	// Arity is the broadcast tree arity k (default 4).
	Arity int

	// Front end.
	BufferDepth int
	FetchWidth  int

	// Functional units.
	SeqMul     bool // sequential multiplier instead of pipelined hard blocks
	MulLatency int  // 0 = default (2 pipelined; data width if sequential)

	Scheduler SchedulerPolicy

	// SMT enables dual issue: one scalar-path instruction and one
	// parallel/reduction-path instruction may issue in the same cycle,
	// from two different hardware threads. The paper (section 5) discusses
	// SMT as the costlier alternative to fine-grain multithreading; the
	// split pipeline of Figure 1 has exactly two independent issue ports
	// (the scalar datapath and the broadcast network), which is what this
	// models. Thread-management instructions only use the primary port.
	SMT bool

	// StructuralNetworks runs every reduction through the structural
	// pipelined network models (internal/network.Bank) in lockstep with
	// the instruction-level simulation, verifying value and latency of
	// each result. Slower; intended for validation runs and tests.
	StructuralNetworks bool

	// TraceDepth keeps the most recent N issued-instruction records for
	// pipeline diagrams; 0 disables tracing, -1 keeps everything.
	TraceDepth int

	// Blocks selects the block-dispatch tier (see block.go): BlocksAuto
	// engages it whenever the configuration allows (no SMT, no structural
	// co-simulation, no tracing) and exactly one thread is active;
	// BlocksOff forces the per-cycle path. Architecturally invisible
	// either way — cycle accounting is bit-identical.
	Blocks BlocksMode

	// DeadlockWindow aborts the run if no instruction issues for this many
	// consecutive cycles while threads remain (0 = default 100000).
	DeadlockWindow int64
}

// Params validates the configuration, filling defaults in place, and
// returns the derived pipeline timing parameters.
func (c *Config) Params() (pipeline.Params, error) {
	if err := c.Machine.Validate(); err != nil {
		return pipeline.Params{}, err
	}
	mc := c.Machine
	if c.Arity == 0 {
		c.Arity = 4
	}
	if c.Arity < 2 || c.Arity > 64 {
		return pipeline.Params{}, fmt.Errorf("core: Arity must be in [2, 64], got %d", c.Arity)
	}
	p := pipeline.DefaultParams(mc.PEs, c.Arity, mc.Width)
	if c.SeqMul {
		p.SeqMul = true
		p.MulLatency = int(mc.Width)
	}
	if c.MulLatency > 0 {
		p.MulLatency = c.MulLatency
	}
	return p, p.Validate()
}

// InstRecord is one issued instruction, for tracing and pipeline diagrams.
type InstRecord struct {
	Issue      int64
	FetchCycle int64
	Thread     int
	PC         int
	Inst       isa.Inst
	Stall      int64 // cycles waited beyond the front-end minimum
	StallKind  pipeline.HazardKind
}

// Stats aggregates a simulation run.
type Stats struct {
	// Cycles is the total run length including pipeline drain: the cycle
	// after the last in-flight instruction completed write-back.
	Cycles int64
	// Instructions issued, total and by pipeline class.
	Instructions int64
	Scalar       int64
	Parallel     int64
	Reduction    int64
	// PerThread[t] is the number of instructions issued by thread t.
	PerThread []int64
	// IdleCycles is the number of issue slots in which no thread was ready
	// (the broadcast/reduction bottleneck made visible); IdleByKind
	// attributes each idle cycle to the cause of the thread that was
	// closest to becoming ready.
	IdleCycles int64
	IdleByKind map[pipeline.HazardKind]int64
	// StallByKind sums, over issued instructions, the cycles each waited
	// beyond its front-end minimum, attributed to the binding hazard.
	StallByKind map[pipeline.HazardKind]int64
	// Contention counts ready-but-not-selected thread-cycles (more than
	// one thread ready for the single issue slot).
	Contention int64
	// Front-end counters.
	Fetches int64
	Flushes int64
	// BlockDispatches counts block-plane entries (each covering one or
	// more issued micro-ops); BlockFallbacks counts per-reason declines
	// back to the per-cycle path (nil when none occurred or the block
	// plane is off). See block.go.
	BlockDispatches int64
	BlockFallbacks  map[string]int64
}

// IPC is issued instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Utilization is the fraction of cycles that issued an instruction.
func (s Stats) Utilization() float64 { return s.IPC() }

// Processor is a configured simulation instance.
type Processor struct {
	cfg    Config
	params pipeline.Params
	mach   *machine.Machine
	front  *cu.CU
	sb     *pipeline.Scoreboard

	cycle         int64
	lastIssue     int64
	maxCompletion int64
	halted        bool

	// Sequential functional units become free at these cycles. The control
	// unit and the PE array have separate multiplier/divider resources.
	cuMulFree, cuDivFree int64
	peMulFree, peDivFree int64

	stats Stats
	trace []InstRecord

	// Block-dispatch tier (block.go). blocks is nil when the tier is off
	// or the configuration excludes it; blockFuse additionally allows
	// fused superinstruction kernels (serial engine only — the sharded
	// engine executes constituents individually, which the fallback
	// single-step path already covers).
	blocks          *isa.BlockProgram
	blockFuse       bool
	blockDispatches int64
	blockFallbacks  [numFallbacks]int64

	// checkpointReq is set by RequestCheckpoint (any goroutine) and
	// consumed by RunContext at the next cancel-check window boundary,
	// stopping the run at a quiescent point with ErrCheckpoint.
	checkpointReq atomic.Bool

	// statusBuf is reused each cycle by Step to avoid per-cycle allocation.
	statusBuf []threadState

	// structural is non-nil when Config.StructuralNetworks is set.
	structural *structState
}

// threadState is the per-cycle readiness classification of one thread.
type threadState struct {
	ready bool
	why   blocker
}

// New builds a processor for a program, decoding and validating it up
// front (errors wrap isa.ErrInvalidProgram for bad programs).
func New(cfg Config, prog []isa.Inst) (*Processor, error) {
	dp, err := isa.DecodeProgram(prog)
	if err != nil {
		return nil, err
	}
	return NewDecoded(cfg, dp)
}

// NewDecoded builds a processor around an already-decoded program,
// sharing the immutable decoded form with other consumers (the serving
// stack's program cache decodes once per distinct program).
func NewDecoded(cfg Config, dp *isa.DecodedProgram) (*Processor, error) {
	params, err := cfg.Params()
	if err != nil {
		return nil, err
	}
	mach, err := machine.NewDecoded(cfg.Machine, dp)
	if err != nil {
		return nil, err
	}
	if cfg.SMT && cfg.FetchWidth == 0 {
		// Dual issue consumes up to two instructions per cycle; a
		// single-ported instruction fetch would starve the second port.
		cfg.FetchWidth = 2
	}
	front, err := cu.New(cu.Config{
		Threads:     cfg.Machine.Threads,
		BufferDepth: cfg.BufferDepth,
		FetchWidth:  cfg.FetchWidth,
	}, dp)
	if err != nil {
		return nil, err
	}
	if cfg.DeadlockWindow == 0 {
		cfg.DeadlockWindow = 100000
	}
	p := &Processor{
		cfg:    cfg,
		params: params,
		mach:   mach,
		front:  front,
		sb:     pipeline.NewScoreboard(params, cfg.Machine.Threads),
	}
	p.stats.PerThread = make([]int64, cfg.Machine.Threads)
	p.stats.IdleByKind = make(map[pipeline.HazardKind]int64)
	p.stats.StallByKind = make(map[pipeline.HazardKind]int64)
	p.statusBuf = make([]threadState, cfg.Machine.Threads)
	if cfg.StructuralNetworks {
		p.structural = newStructState(cfg.Machine.PEs, cfg.Arity, cfg.Machine.Width)
	}
	if cfg.Blocks != BlocksOff && !cfg.SMT && !cfg.StructuralNetworks && cfg.TraceDepth == 0 {
		p.blocks = dp.Blocks()
		p.blockFuse = !mach.EngineParallelActive()
	}
	return p, nil
}

// Machine exposes the architectural state (for loading data and reading
// results).
func (p *Processor) Machine() *machine.Machine { return p.mach }

// Params returns the derived timing parameters (b, r, unit latencies).
func (p *Processor) Params() pipeline.Params { return p.params }

// Cycle returns the current simulation cycle.
func (p *Processor) Cycle() int64 { return p.cycle }

// Trace returns the recorded instruction trace (nil if TraceDepth is 0).
func (p *Processor) Trace() []InstRecord { return p.trace }

// FrontEnd exposes the control-unit front end (for introspection tools).
func (p *Processor) FrontEnd() *cu.CU { return p.front }

// blocker describes why a thread cannot issue at the current cycle.
type blocker struct {
	kind    pipeline.HazardKind
	readyAt int64 // estimated cycle the thread becomes ready; -1 = unknown
}

// threadStatus classifies thread tid at the current cycle. ready=true means
// it can issue now; otherwise why describes the binding obstacle.
func (p *Processor) threadStatus(tid int) (ready bool, why blocker) {
	if !p.mach.ThreadActive(tid) || !p.front.Active(tid) {
		return false, blocker{kind: pipeline.HazardNone, readyAt: -1}
	}
	head, ok := p.front.Head(tid)
	if !ok {
		// Buffer empty: either a redirect is resolving or fetch bandwidth
		// has not reached this thread yet.
		return false, blocker{kind: pipeline.HazardFetch, readyAt: -1}
	}
	if head.PC != p.mach.PC(tid) {
		panic(fmt.Sprintf("core: thread %d buffer head pc %d != architectural pc %d", tid, head.PC, p.mach.PC(tid)))
	}
	if e := head.EligibleAt(); e > p.cycle {
		return false, blocker{kind: pipeline.HazardFetch, readyAt: e}
	}
	if min, kind := p.sb.MinIssue(tid, head.D); min > p.cycle {
		return false, blocker{kind: kind, readyAt: min}
	}
	if free := p.unitFreeAt(head.D); free > p.cycle {
		return false, blocker{kind: pipeline.HazardStructural, readyAt: free}
	}
	if p.mach.BlockedDecoded(tid, head.D) {
		return false, blocker{kind: pipeline.HazardSync, readyAt: -1}
	}
	return true, blocker{}
}

// unitFreeAt returns the cycle at which any sequential unit the micro-op
// needs becomes free (or 0 if it needs none / the unit is pipelined).
func (p *Processor) unitFreeAt(d *isa.Decoded) int64 {
	info := d.Info
	switch {
	case info.IsDiv && d.Class == isa.ClassScalar:
		return p.cuDivFree
	case info.IsDiv:
		return p.peDivFree
	case info.IsMul && p.params.SeqMul && d.Class == isa.ClassScalar:
		return p.cuMulFree
	case info.IsMul && p.params.SeqMul:
		return p.peMulFree
	}
	return 0
}

// reserveUnit marks a sequential unit busy after an issue at cycle t.
func (p *Processor) reserveUnit(d *isa.Decoded, t int64) {
	info := d.Info
	switch {
	case info.IsDiv && d.Class == isa.ClassScalar:
		p.cuDivFree = t + int64(p.params.DivLatency)
	case info.IsDiv:
		p.peDivFree = t + int64(p.params.DivLatency)
	case info.IsMul && p.params.SeqMul && d.Class == isa.ClassScalar:
		p.cuMulFree = t + int64(p.params.MulLatency)
	case info.IsMul && p.params.SeqMul:
		p.peMulFree = t + int64(p.params.MulLatency)
	}
}

// Step simulates one clock cycle. It returns false once the machine has
// halted and the pipeline has drained.
func (p *Processor) Step() (bool, error) {
	if p.done() {
		return false, nil
	}

	// Structural co-simulation: advance the network bank first, so an
	// operation pushed at issue cycle t takes its first pipeline step at
	// t+1 (entering B1) and emerges at t+b+r+1, the end of its last
	// reduction stage.
	if p.structural != nil {
		if err := p.stepStructural(); err != nil {
			return false, err
		}
	}

	// Issue phase: classify every thread, pick one ready thread.
	n := p.cfg.Machine.Threads
	sts := p.statusBuf
	readyCount := 0
	for tid := 0; tid < n; tid++ {
		r, why := p.threadStatus(tid)
		sts[tid] = threadState{ready: r, why: why}
		if r {
			readyCount++
		}
	}
	isReady := func(tid int) bool { return sts[tid].ready }

	var picked int
	switch p.cfg.Scheduler {
	case SchedFixed:
		picked = p.front.PickFixed(isReady)
	default:
		picked = p.front.PickRotating(isReady)
	}

	if picked >= 0 {
		firstClass := p.headClass(picked)
		if err := p.issue(picked); err != nil {
			return false, err
		}
		issued := 1
		if p.cfg.SMT {
			// Second issue slot: a thread whose next instruction uses the
			// other datapath. Statuses are re-evaluated because the first
			// issue changed machine and scoreboard state.
			second := p.pickSecond(picked, firstClass)
			if second >= 0 {
				if err := p.issue(second); err != nil {
					return false, err
				}
				issued++
			}
		}
		if extra := readyCount - issued; extra > 0 {
			p.stats.Contention += int64(extra)
		}
		p.lastIssue = p.cycle
	} else if p.anyActive() {
		p.stats.IdleCycles++
		// Attribute the lost issue slot to the thread closest to ready.
		best := blocker{kind: pipeline.HazardNone, readyAt: -1}
		for tid := 0; tid < n; tid++ {
			w := sts[tid].why
			if w.kind == pipeline.HazardNone {
				continue
			}
			if best.kind == pipeline.HazardNone ||
				(w.readyAt >= 0 && (best.readyAt < 0 || w.readyAt < best.readyAt)) {
				best = w
			}
		}
		if best.kind != pipeline.HazardNone {
			p.stats.IdleByKind[best.kind]++
		}
		if p.cycle-p.lastIssue > p.cfg.DeadlockWindow {
			return false, fmt.Errorf("core: no instruction issued for %d cycles (deadlock at cycle %d)", p.cfg.DeadlockWindow, p.cycle)
		}
	}

	// Fetch phase (same cycle, after issue, so a decode-stage redirect can
	// refetch immediately).
	p.front.Fetch(p.cycle)

	p.cycle++
	return !p.done(), nil
}

// headClass returns the pipeline class of tid's next instruction (only
// valid when the thread was just found ready).
func (p *Processor) headClass(tid int) isa.Class {
	head, ok := p.front.Head(tid)
	if !ok {
		return isa.ClassScalar
	}
	return head.D.Class
}

// scalarPath reports whether a class uses the scalar datapath issue port.
func scalarPath(c isa.Class) bool { return c == isa.ClassScalar }

// pickSecond selects a thread for the SMT second issue slot: ready right
// now (re-evaluated after the first issue), different thread, opposite
// datapath, and not a thread-management or halt instruction (the thread
// status table is single-ported).
func (p *Processor) pickSecond(first int, firstClass isa.Class) int {
	if p.halted {
		return -1
	}
	ok := func(tid int) bool {
		if tid == first {
			return false
		}
		ready, _ := p.threadStatus(tid)
		if !ready {
			return false
		}
		head, have := p.front.Head(tid)
		if !have {
			return false
		}
		info := head.D.Info
		if info.IsThread || info.IsHalt {
			return false
		}
		return scalarPath(head.D.Class) != scalarPath(firstClass)
	}
	switch p.cfg.Scheduler {
	case SchedFixed:
		return p.front.PickFixed(ok)
	default:
		return p.front.PickRotating(ok)
	}
}

func (p *Processor) anyActive() bool {
	for tid := 0; tid < p.cfg.Machine.Threads; tid++ {
		if p.mach.ThreadActive(tid) {
			return true
		}
	}
	return false
}

func (p *Processor) done() bool {
	if !p.halted && !p.mach.Halted() {
		return false
	}
	// Drain: run the clock to the last write-back.
	return p.cycle >= p.maxCompletion
}

// issue pops and executes the head micro-op of thread tid.
func (p *Processor) issue(tid int) error {
	head := p.front.PopHead(tid)
	d := head.D

	// Stall accounting: cycles beyond the front-end minimum, attributed to
	// the binding hazard at decode time.
	minIssue, kind := p.sb.MinIssue(tid, d)
	stall := p.cycle - head.EligibleAt()
	if stall > 0 {
		k := kind
		if minIssue <= head.EligibleAt() {
			// Not a register hazard: structural, sync, or contention.
			switch {
			case p.unitFreeAt(d) > head.EligibleAt():
				k = pipeline.HazardStructural
			default:
				k = pipeline.HazardNone
			}
		}
		if k != pipeline.HazardNone {
			p.stats.StallByKind[k] += stall
		}
	}

	if p.structural != nil && d.Class == isa.ClassReduction {
		p.pushReduction(tid, d.Inst)
	}

	out, err := p.mach.ExecDecoded(tid, d)
	if err != nil {
		return err
	}
	p.sb.Record(tid, d, p.cycle)
	p.reserveUnit(d, p.cycle)

	if c := p.params.CompletionTime(d, p.cycle); c > p.maxCompletion {
		p.maxCompletion = c
	}

	// Statistics.
	p.stats.Instructions++
	p.stats.PerThread[tid]++
	switch d.Class {
	case isa.ClassScalar:
		p.stats.Scalar++
	case isa.ClassParallel:
		p.stats.Parallel++
	case isa.ClassReduction:
		p.stats.Reduction++
	}
	if p.cfg.TraceDepth != 0 {
		rec := InstRecord{
			Issue: p.cycle, FetchCycle: head.FetchCycle, Thread: tid,
			PC: head.PC, Inst: d.Inst, Stall: stall, StallKind: kind,
		}
		if stall <= 0 {
			rec.StallKind = pipeline.HazardNone
		}
		p.trace = append(p.trace, rec)
		if p.cfg.TraceDepth > 0 && len(p.trace) > p.cfg.TraceDepth {
			p.trace = p.trace[1:]
		}
	}

	// Control flow outcomes.
	switch {
	case out.Halt:
		p.halted = true
		for t := 0; t < p.cfg.Machine.Threads; t++ {
			p.front.StopThread(t)
		}
	case out.Exited:
		p.front.StopThread(tid)
	case out.Redirect:
		resume := p.cycle + int64(p.params.ExecRedirect) - 1
		if d.Kind == isa.ExecJump && d.Jump != isa.JumpReg {
			// J/JAL: target known at decode, cheap redirect.
			resume = p.cycle + int64(p.params.DecodeRedirect) - 1
		}
		p.front.Redirect(tid, out.NextPC, resume)
	}
	if out.Spawned >= 0 {
		p.sb.ClearThread(out.Spawned)
		p.front.StartThread(out.Spawned, p.mach.PC(out.Spawned), p.cycle+int64(p.params.SpawnStart)-1)
	}
	return nil
}

// ErrCycleLimit reports that a run stopped at its cycle budget before the
// machine halted. Callers distinguishing resource exhaustion from
// architectural traps test with errors.Is.
var ErrCycleLimit = errors.New("cycle limit reached before halt")

// ErrCheckpoint reports that a run stopped because RequestCheckpoint was
// called, not because the machine halted or the budget ran out. The
// processor is at a quiescent point: Snapshot() captures a state from which
// an identically configured machine resumes bit-identically. Callers test
// with errors.Is.
var ErrCheckpoint = errors.New("run suspended at checkpoint request")

// cancelCheckWindow is how many cycles RunContext simulates between context
// polls: coarse enough that the poll is invisible in the hot loop, fine
// enough that cancellation lands within microseconds of real time.
const cancelCheckWindow = 4096

// Run simulates until the machine halts and the pipeline drains, or until
// maxCycles elapse (0 = no limit). It returns the final statistics.
func (p *Processor) Run(maxCycles int64) (Stats, error) {
	return p.RunContext(context.Background(), maxCycles)
}

// RunContext is Run with cooperative cancellation: every cancelCheckWindow
// cycles it polls ctx and the checkpoint request flag. When the context is
// done it stops and returns the statistics so far together with the
// context's error; when a checkpoint was requested it stops with
// ErrCheckpoint instead. Either way the processor is left at a quiescent
// point (between Step calls), so it can be Reset, Snapshot, or resumed
// afterwards.
func (p *Processor) RunContext(ctx context.Context, maxCycles int64) (Stats, error) {
	done := ctx.Done()
	nextCheck := p.cycle + cancelCheckWindow
	for {
		if maxCycles > 0 && p.cycle >= maxCycles {
			return p.finish(), fmt.Errorf("core: %w (limit %d)", ErrCycleLimit, maxCycles)
		}
		if p.cycle >= nextCheck {
			if p.checkpointReq.CompareAndSwap(true, false) {
				return p.finish(), fmt.Errorf("core: %w (cycle %d)", ErrCheckpoint, p.cycle)
			}
			if done != nil {
				select {
				case <-done:
					return p.finish(), fmt.Errorf("core: run stopped at cycle %d: %w", p.cycle, ctx.Err())
				default:
				}
			}
			nextCheck = p.cycle + cancelCheckWindow
		}
		if p.blocks != nil {
			// Block-dispatch tier: cover as much of the window as the
			// closed form allows, then fall back to the per-cycle path.
			stopAt := nextCheck
			if maxCycles > 0 && maxCycles < stopAt {
				stopAt = maxCycles
			}
			ran, err := p.runBlock(stopAt)
			if err != nil {
				return p.finish(), err
			}
			if ran {
				continue
			}
		}
		more, err := p.Step()
		if err != nil {
			return p.finish(), err
		}
		if !more {
			if err := p.structuralDrained(); err != nil {
				return p.finish(), err
			}
			return p.finish(), nil
		}
	}
}

func (p *Processor) finish() Stats {
	s := p.stats
	s.Cycles = p.cycle
	if p.maxCompletion+1 > s.Cycles {
		s.Cycles = p.maxCompletion + 1
	}
	s.Fetches = p.front.Fetches
	s.Flushes = p.front.Flushes
	s.BlockDispatches = p.blockDispatches
	for i, v := range p.blockFallbacks {
		if v == 0 {
			continue
		}
		if s.BlockFallbacks == nil {
			s.BlockFallbacks = make(map[string]int64, numFallbacks)
		}
		s.BlockFallbacks[fallbackReasons[i]] = v
	}
	return s
}

// Reset returns the processor to power-on state — architectural machine
// state, front end, scoreboard, sequential-unit reservations, statistics,
// and trace — without reallocating the flat register/flag/memory files or
// restarting the host engine's worker pool. A reset processor behaves
// identically to a freshly constructed one; the serving pool relies on this
// to reuse warm machines across requests.
func (p *Processor) Reset() {
	p.mach.Reset()
	p.front.Reset(p.mach.Decoded())
	for tid := 0; tid < p.cfg.Machine.Threads; tid++ {
		p.sb.ClearThread(tid)
	}
	p.cycle, p.lastIssue, p.maxCompletion = 0, 0, 0
	p.halted = false
	p.cuMulFree, p.cuDivFree, p.peMulFree, p.peDivFree = 0, 0, 0, 0
	p.stats = Stats{
		PerThread:   make([]int64, p.cfg.Machine.Threads),
		IdleByKind:  make(map[pipeline.HazardKind]int64),
		StallByKind: make(map[pipeline.HazardKind]int64),
	}
	p.trace = nil
	p.blockDispatches = 0
	p.blockFallbacks = [numFallbacks]int64{}
	p.checkpointReq.Store(false)
	if p.structural != nil {
		p.structural = newStructState(p.cfg.Machine.PEs, p.cfg.Arity, p.cfg.Machine.Width)
	}
}

// RequestCheckpoint asks an in-flight RunContext to stop at the next
// cancel-check window boundary with ErrCheckpoint. Safe to call from any
// goroutine; a request with no run in flight applies to the next
// RunContext on this processor (Reset clears it). Runs shorter than the
// poll window simply complete — there is no boundary at which to suspend
// them.
func (p *Processor) RequestCheckpoint() { p.checkpointReq.Store(true) }

// SetProgram retargets the processor at a new program and Resets it. The
// program is decoded and validated like New; on error the processor is
// left unchanged, still running the old program. The configuration (and
// thus all allocated state) is unchanged, which is what lets a pooled
// machine serve a stream of different programs.
func (p *Processor) SetProgram(prog []isa.Inst) error {
	dp, err := isa.DecodeProgram(prog)
	if err != nil {
		return err
	}
	p.SetDecoded(dp)
	return nil
}

// SetDecoded retargets the processor at an already-decoded program and
// Resets it.
func (p *Processor) SetDecoded(dp *isa.DecodedProgram) {
	p.mach.SetDecoded(dp)
	if p.blocks != nil {
		p.blocks = dp.Blocks()
	}
	p.Reset()
}

// Restore loads an architectural snapshot (machine.Snapshot) taken from an
// identically configured machine at a quiescent point, and resynchronizes
// the microarchitectural state: instruction buffers refetch from the
// restored PCs, the scoreboard empties (no instructions are in flight at a
// quiescent point), and any structural co-simulation state is discarded.
func (p *Processor) Restore(data []byte) error {
	if err := p.mach.Restore(data); err != nil {
		return err
	}
	for tid := 0; tid < p.cfg.Machine.Threads; tid++ {
		p.sb.ClearThread(tid)
		if p.mach.ThreadActive(tid) {
			p.front.StartThread(tid, p.mach.PC(tid), p.cycle)
		} else {
			p.front.StopThread(tid)
		}
	}
	p.cuMulFree, p.cuDivFree, p.peMulFree, p.peDivFree = 0, 0, 0, 0
	p.halted = p.mach.Halted()
	if p.structural != nil {
		p.structural = newStructState(p.cfg.Machine.PEs, p.cfg.Arity, p.cfg.Machine.Width)
	}
	return nil
}

// Snapshot serializes the architectural state (see machine.Snapshot).
func (p *Processor) Snapshot() []byte { return p.mach.Snapshot() }

// NetworkLatencies returns (b, r) for convenience in reports.
func (p *Processor) NetworkLatencies() (b, r int) { return p.params.B, p.params.R }

// Describe summarizes the processor configuration.
func (p *Processor) Describe() string {
	mc := p.cfg.Machine
	return fmt.Sprintf(
		"MTASC processor: %d PEs x %d-bit, %d hardware threads, %d KB local memory/PE\n"+
			"broadcast: %d-ary tree, b=%d stages (%d nodes); reduction: binary trees, r=%d stages (%d nodes/unit)\n",
		mc.PEs, mc.Width, mc.Threads, mc.LocalMemWords*int(mc.Width)/8/1024,
		p.cfg.Arity, p.params.B, network.BroadcastNodes(mc.PEs, p.cfg.Arity),
		p.params.R, network.ReduceNodes(mc.PEs))
}
