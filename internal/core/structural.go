package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/network"
)

// Structural co-simulation: when Config.StructuralNetworks is set, every
// reduction instruction is also pushed through the structural pipelined
// network models of internal/network (the modal trees and the resolver),
// advanced one clock per simulated cycle. Each emerging result is checked
// against the functional value and against the modeled latency; any
// mismatch aborts the simulation with an error. This cross-validates the
// instruction-level timing constants (b, r) against the register-by-
// register hardware model they were derived from.

// expectedResult is a value the structural network must produce.
type expectedResult struct {
	due    int64 // exact cycle the result must emerge
	value  int64
	vector []bool
	desc   string
}

// structState holds the co-simulation state.
type structState struct {
	bank     *network.Bank
	expected map[int64]expectedResult // keyed by tag
	nextTag  int64
}

func newStructState(pes, arity int, width uint) *structState {
	return &structState{
		bank:     network.NewBank(pes, arity, width),
		expected: make(map[int64]expectedResult),
	}
}

// reduceOpFor maps ISA reductions onto network units.
func reduceOpFor(op isa.Op) network.ReduceOp {
	switch op {
	case isa.ROR:
		return network.ROpOr
	case isa.RAND:
		return network.ROpAnd
	case isa.RMAX:
		return network.ROpMax
	case isa.RMIN:
		return network.ROpMin
	case isa.RMAXU:
		return network.ROpMaxU
	case isa.RMINU:
		return network.ROpMinU
	case isa.RSUM:
		return network.ROpSum
	case isa.RCOUNT:
		return network.ROpCount
	case isa.RANY:
		return network.ROpAny
	case isa.RFIRST:
		return network.ROpFirst
	}
	panic(fmt.Sprintf("core: %v is not a reduction", op))
}

// pushReduction gathers the operands of a reduction issuing this cycle for
// thread tid and starts it through the structural network. Must be called
// before machine.Exec (RFIRST overwrites flag state).
func (p *Processor) pushReduction(tid int, in isa.Inst) {
	st := p.structural
	pes := p.cfg.Machine.PEs
	width := p.cfg.Machine.Width
	ones := int64(1)<<width - 1

	maskVec := make([]bool, pes)
	for pe := 0; pe < pes; pe++ {
		maskVec[pe] = p.mach.Flag(tid, pe, in.Mask)
	}
	rop := reduceOpFor(in.Op)
	tag := st.nextTag
	st.nextTag++
	due := p.cycle + int64(st.bank.Latency())
	desc := fmt.Sprintf("t%d %v @%d", tid, in, p.cycle)

	switch rop {
	case network.ROpCount, network.ROpAny, network.ROpFirst:
		flags := make([]bool, pes)
		for pe := 0; pe < pes; pe++ {
			flags[pe] = p.mach.Flag(tid, pe, in.Ra)
		}
		st.bank.PushFlags(rop, tag, flags, maskVec)
		exp := expectedResult{due: due, desc: desc}
		switch rop {
		case network.ROpCount:
			exp.value = network.CountResponders(flags, maskVec) & ones
		case network.ROpAny:
			if network.AnyResponder(flags, maskVec) {
				exp.value = 1
			}
		case network.ROpFirst:
			exp.vector = network.FirstResponder(flags, maskVec)
		}
		st.expected[tag] = exp
	default:
		vals := make([]int64, pes)
		signedVals := make([]int64, pes)
		for pe := 0; pe < pes; pe++ {
			vals[pe] = p.mach.Parallel(tid, pe, in.Ra)
			signedVals[pe] = vals[pe] << (64 - width) >> (64 - width)
		}
		st.bank.PushValues(rop, tag, vals, maskVec)
		var want int64
		switch rop {
		case network.ROpOr:
			want = network.ReduceOr(vals, maskVec)
		case network.ROpAnd:
			want = network.ReduceAnd(vals, maskVec, width)
		case network.ROpMax:
			want = network.ReduceMax(signedVals, maskVec, width) & ones
		case network.ROpMin:
			want = network.ReduceMin(signedVals, maskVec, width) & ones
		case network.ROpMaxU:
			want = network.ReduceMaxU(vals, maskVec)
		case network.ROpMinU:
			want = network.ReduceMinU(vals, maskVec, width)
		case network.ROpSum:
			want = network.ReduceSum(signedVals, maskVec, width) & ones
		}
		st.expected[tag] = expectedResult{due: due, value: want, desc: desc}
	}
}

// stepStructural advances the network bank one cycle and checks everything
// that emerged.
func (p *Processor) stepStructural() error {
	st := p.structural
	for _, res := range st.bank.Step() {
		exp, ok := st.expected[res.Tag]
		if !ok {
			return fmt.Errorf("core: structural network produced untracked result (tag %d, op %v)", res.Tag, res.Op)
		}
		delete(st.expected, res.Tag)
		if p.cycle != exp.due {
			return fmt.Errorf("core: %s emerged from the structural network at cycle %d, modeled %d", exp.desc, p.cycle, exp.due)
		}
		if exp.vector != nil {
			if res.Vector == nil {
				return fmt.Errorf("core: %s: expected resolver vector, got scalar", exp.desc)
			}
			for i := range exp.vector {
				if res.Vector[i] != exp.vector[i] {
					return fmt.Errorf("core: %s: resolver bit %d = %v, functional model says %v", exp.desc, i, res.Vector[i], exp.vector[i])
				}
			}
			continue
		}
		if res.Value != exp.value {
			return fmt.Errorf("core: %s: structural result %d, functional %d", exp.desc, res.Value, exp.value)
		}
	}
	return nil
}

// structuralDrained reports whether all in-flight structural results have
// been checked (consulted at the end of Run).
func (p *Processor) structuralDrained() error {
	if p.structural == nil || len(p.structural.expected) == 0 {
		return nil
	}
	return fmt.Errorf("core: %d reduction(s) never emerged from the structural network", len(p.structural.expected))
}
