package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/machine"
)

// TestCoreEngineEquivalence runs a multithreaded reduction-heavy kernel
// through the full timed core on both host engines and demands identical
// stats and identical architectural snapshots. Under `go test -race` this
// also drives the worker-pool barrier through the core's issue loop.
func TestCoreEngineEquivalence(t *testing.T) {
	// Each of 4 threads loads its slice, reduces it, and stores the result;
	// thread 0 spawns the rest and joins them.
	src := `
        tid s1
        bne s1, s0, work
        tspawn s2, work
        tspawn s3, work
        tspawn s4, work
work:
        tid s1
        pidx p1
        padd p2, p1, s1 ?f0
        pclt f1, p1, s1
        rsum s5, p2 ?f1
        rmax s6, p2
        rcount s7, f1
        rfirst f2, f1
        ror s8, p2 ?f2
        add s9, s5, s6
        add s9, s9, s7
        add s9, s9, s8
        sw s9, 0(s1)
        tid s1
        bne s1, s0, done
        tjoin s2
        tjoin s3
        tjoin s4
        halt
done:
        texit
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	var snaps [][]byte
	var stats []Stats
	for _, engine := range []machine.Engine{machine.EngineSerial, machine.EngineParallel} {
		cfg := Config{Machine: machine.Config{
			PEs: 96, Threads: 8, Width: 16, LocalMemWords: 64, Engine: engine,
		}}
		p, err := New(cfg, prog.Insts)
		if err != nil {
			t.Fatal(err)
		}
		if engine == machine.EngineParallel && !p.Machine().EngineParallelActive() {
			t.Fatal("parallel engine not active in core run")
		}
		st, err := p.Run(2_000_000)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		snaps = append(snaps, p.Machine().Snapshot())
		stats = append(stats, st)
		p.Machine().Close()
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		t.Fatal("core snapshots differ between engines")
	}
	if !reflect.DeepEqual(stats[0], stats[1]) {
		t.Fatalf("core stats differ between engines:\nserial:   %+v\nparallel: %+v", stats[0], stats[1])
	}
}

// TestCoreStructuralWithParallelEngine: the structural network co-simulation
// must agree with the sharded engine's reduction results too.
func TestCoreStructuralWithParallelEngine(t *testing.T) {
	src := `
        pidx p1
        pclt f1, p1, s0
        fnot f1, f1
        rsum s2, p1 ?f1
        rmax s3, p1
        rcount s4, f1
        sw s2, 0(s0)
        halt
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Machine:            machine.Config{PEs: 64, Threads: 2, Width: 16, Engine: machine.EngineParallel},
		StructuralNetworks: true,
	}
	p, err := New(cfg, prog.Insts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Machine().Close()
	if _, err := p.Run(100_000); err != nil {
		t.Fatal(err)
	}
}
