package core

import (
	"strings"
	"testing"
)

// TestTrapSurfacesFromRun: architectural traps abort the timed simulation
// with the trap error, not a hang or a panic.
func TestTrapSurfacesFromRun(t *testing.T) {
	p := build(t, paperCfg(1), `
		lw s2, 9999(s0)  ; out of scalar memory
		halt
	`)
	_, err := p.Run(100000)
	if err == nil {
		t.Fatal("trap did not surface")
	}
	if !strings.Contains(err.Error(), "scalar load address") {
		t.Errorf("error = %v", err)
	}
}

// TestRunOffProgramEnd: a thread whose fetch runs past the program end (no
// halt, no redirect) starves and the deadlock detector reports it instead
// of the simulator spinning forever.
func TestRunOffProgramEnd(t *testing.T) {
	cfg := paperCfg(1)
	cfg.DeadlockWindow = 200
	p := build(t, cfg, `
		nop
		nop
	`)
	if _, err := p.Run(100000); err == nil {
		t.Fatal("expected an error for a program with no halt")
	}
}
