package obs

import (
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testRegistry builds a deterministic registry exercising every instrument
// shape: plain and labeled counters and gauges, a gauge func, label-value
// escaping, and histograms with and without labels.
func testRegistry() *Registry {
	r := NewRegistry()
	jobs := r.NewCounter("test_jobs_total", "Jobs processed.")
	jobs.Add(3)
	out := r.NewCounterVec("test_outcomes_total", "Finished jobs by outcome.", "outcome")
	out.With("completed").Add(2)
	out.With("failed").Inc()
	out.With(`quote"back\slash` + "\nnewline").Inc()
	depth := r.NewGauge("test_queue_depth", "Jobs waiting now.")
	depth.Set(7)
	r.NewGaugeFunc("test_workers", "Worker goroutines.", func() float64 { return 4 })
	idle := r.NewGaugeVec("test_pool_idle_machines", "Warm machines parked, per configuration.", "config")
	idle.With("pes=16 threads=16").Set(2)
	idle.With("pes=64 threads=8").Set(1)
	h := r.NewHistogram("test_duration_seconds", "Request latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100) // lands in +Inf
	hv := r.NewHistogramVec("test_stage_seconds", "Stage latency.", []float64{0.5, 2}, "stage")
	hv.With("compile").Observe(0.25)
	hv.With("simulate").Observe(1)
	hv.With("simulate").Observe(3)
	return r
}

// TestExposition golden-tests the rendered Prometheus text format and runs
// the format lint over it. CI smokes this test under -race.
func TestExposition(t *testing.T) {
	var b strings.Builder
	if err := testRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file (run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	if err := Lint(got); err != nil {
		t.Errorf("rendered exposition fails lint: %v", err)
	}

	// Rendering twice must be deterministic (children sorted, no map
	// iteration order leaking through).
	var b2 strings.Builder
	if err := testRegistry().WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != got {
		t.Error("two renders of identical registries differ")
	}
}

func TestServeHTTP(t *testing.T) {
	rec := httptest.NewRecorder()
	testRegistry().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	if !strings.Contains(rec.Body.String(), "test_jobs_total 3") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

// TestLintCatchesViolations feeds the lint known-bad expositions.
func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"bad name", "# HELP Bad x\n"},
		{"sample without type", "orphan_total 1\n"},
		{"type after sample", "# HELP a_total x\n# TYPE a_total counter\na_total 1\n# TYPE a_total counter\n"},
		{"unknown type", "# HELP a x\n# TYPE a summary\n"},
		{"non-cumulative buckets", "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"},
		{"missing +Inf", "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n"},
		{"inf != count", "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 9\n"},
	}
	for _, tc := range cases {
		if err := Lint(tc.text); err == nil {
			t.Errorf("%s: lint accepted bad exposition", tc.name)
		}
	}
	good := "# HELP h x\n# TYPE h histogram\n" +
		"h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"
	if err := Lint(good); err != nil {
		t.Errorf("lint rejected valid exposition: %v", err)
	}
}
