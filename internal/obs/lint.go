package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// Lint statically checks a rendered exposition against the format rules
// this package promises: every metric name matches [a-z_:][a-z0-9_:]*,
// HELP and TYPE lines precede the family's samples, every sample belongs
// to a declared family, and histogram _bucket series are cumulative and
// terminated by an le="+Inf" bucket equal to _count. Tests run it over
// golden output and over a live server's /metrics.
func Lint(text string) error {
	type famState struct {
		typ string
		// bucket tracking per label tuple (minus le)
		lastBucket map[string]int64
		infSeen    map[string]int64
		count      map[string]int64
	}
	fams := map[string]*famState{}
	helpSeen := map[string]bool{}
	sampled := map[string]bool{}

	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			name := parts[0]
			if !nameRE.MatchString(name) {
				return fmt.Errorf("line %d: HELP for invalid metric name %q", lineNo, name)
			}
			if sampled[name] {
				return fmt.Errorf("line %d: HELP for %q after its samples", lineNo, name)
			}
			helpSeen[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := parts[0], parts[1]
			if !nameRE.MatchString(name) {
				return fmt.Errorf("line %d: TYPE for invalid metric name %q", lineNo, name)
			}
			if sampled[name] {
				return fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				return fmt.Errorf("line %d: unknown type %q", lineNo, typ)
			}
			if !helpSeen[name] {
				return fmt.Errorf("line %d: TYPE for %q without preceding HELP", lineNo, name)
			}
			fams[name] = &famState{
				typ:        typ,
				lastBucket: map[string]int64{},
				infSeen:    map[string]int64{},
				count:      map[string]int64{},
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}

		// Sample line: name[{labels}] value [ts] [# {exemplar} value [ts]].
		// The label block ends at the first close brace outside quotes —
		// an exemplar carries a second brace block on the same line.
		name := line
		labels := ""
		rest := line
		// As in parseSample: only a '{' adjacent to the name opens the
		// sample's label block; a later one belongs to an exemplar.
		if i := strings.IndexAny(line, " \t{"); i >= 0 && line[i] == '{' {
			j := labelBlockEnd(line, i+1)
			if j < 0 {
				return fmt.Errorf("line %d: unbalanced braces in %q", lineNo, line)
			}
			name, labels = line[:i], line[i+1:j]
			rest = name + " " + line[j+1:]
		}
		exPart := ""
		if h := strings.IndexByte(rest, '#'); h >= 0 {
			exPart = strings.TrimSpace(rest[h+1:])
			rest = rest[:h]
		}
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return fmt.Errorf("line %d: sample without value: %q", lineNo, line)
		}
		name = fields[0]
		if !nameRE.MatchString(name) {
			return fmt.Errorf("line %d: invalid sample metric name %q", lineNo, name)
		}
		value, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return fmt.Errorf("line %d: unparseable sample value %q", lineNo, fields[1])
		}
		if exPart != "" {
			if _, err := parseExemplar(exPart); err != nil {
				return fmt.Errorf("line %d: %v in %q", lineNo, err, line)
			}
		}

		// Resolve the owning family: histogram samples use the base name
		// plus _bucket/_sum/_count.
		base, suffix := name, ""
		if f, ok := fams[name]; !ok || f.typ == "histogram" {
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, sfx) {
					if hf, ok := fams[strings.TrimSuffix(name, sfx)]; ok && hf.typ == "histogram" {
						base, suffix = strings.TrimSuffix(name, sfx), sfx
						break
					}
				}
			}
		}
		f, ok := fams[base]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE declaration", lineNo, name)
		}
		sampled[base] = true
		if f.typ == "histogram" && suffix == "" {
			return fmt.Errorf("line %d: bare sample %q for histogram family", lineNo, name)
		}
		// OpenMetrics allows exemplars only on counter samples and
		// histogram buckets — not on gauges, _sum, or _count.
		if exPart != "" && f.typ != "counter" && !(f.typ == "histogram" && suffix == "_bucket") {
			return fmt.Errorf("line %d: exemplar on %s sample %q", lineNo, f.typ+suffix, name)
		}

		if f.typ == "histogram" {
			le, rest := splitLE(labels)
			switch suffix {
			case "_bucket":
				if le == "" {
					return fmt.Errorf("line %d: histogram bucket without le label: %q", lineNo, name)
				}
				n := int64(value)
				if le == "+Inf" {
					f.infSeen[rest] = n
				} else {
					if _, err := strconv.ParseFloat(le, 64); err != nil {
						return fmt.Errorf("line %d: unparseable le bound %q", lineNo, le)
					}
					if _, seenInf := f.infSeen[rest]; seenInf {
						return fmt.Errorf("line %d: finite bucket after +Inf for %q", lineNo, base)
					}
					if n < f.lastBucket[rest] {
						return fmt.Errorf("line %d: histogram %q buckets not cumulative (%d < %d)",
							lineNo, base, n, f.lastBucket[rest])
					}
					f.lastBucket[rest] = n
				}
			case "_count":
				f.count[rest] = int64(value)
			}
		}
	}

	// Every histogram series must have ended at +Inf, matching _count.
	for name, f := range fams {
		if f.typ != "histogram" || !sampled[name] {
			continue
		}
		for tuple, n := range f.count {
			inf, ok := f.infSeen[tuple]
			if !ok {
				return fmt.Errorf("histogram %q{%s} has no le=\"+Inf\" bucket", name, tuple)
			}
			if inf != n {
				return fmt.Errorf("histogram %q{%s}: +Inf bucket %d != count %d", name, tuple, inf, n)
			}
			if last := f.lastBucket[tuple]; last > inf {
				return fmt.Errorf("histogram %q{%s}: finite bucket %d exceeds +Inf %d", name, tuple, last, inf)
			}
		}
		for tuple := range f.infSeen {
			if _, ok := f.count[tuple]; !ok {
				return fmt.Errorf("histogram %q{%s} has buckets but no _count", name, tuple)
			}
		}
	}
	return nil
}

// splitLE extracts the le label from a rendered label string, returning
// its value and the remaining labels (the series identity).
func splitLE(labels string) (le, rest string) {
	parts := strings.Split(labels, ",")
	kept := parts[:0]
	for _, p := range parts {
		if v, ok := strings.CutPrefix(p, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		kept = append(kept, p)
	}
	return le, strings.Join(kept, ",")
}
