package obs

import (
	"strings"
	"testing"
)

// renderRegistry builds a small registry with every instrument kind and
// renders it — the canonical input for round-trip tests.
func renderRegistry(t *testing.T, runs, hits int64) string {
	t.Helper()
	reg := NewRegistry()
	c := reg.NewCounter("asc_runs_total", "Completed runs.")
	c.Add(runs)
	cv := reg.NewCounterVec("asc_cache_hits_total", "Cache hits by tier.", "tier")
	cv.With("program").Add(hits)
	cv.With("pool").Add(hits + 1)
	g := reg.NewGauge("asc_queue_depth", "Jobs waiting.")
	g.Set(3)
	h := reg.NewHistogram("asc_latency_seconds", "Request latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(5)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestParseRoundTrip parses rendered output and re-renders it; the text
// must survive unchanged (same families, samples, values) and stay
// lint-clean.
func TestParseRoundTrip(t *testing.T) {
	text := renderRegistry(t, 7, 2)
	fams, err := ParseText(text)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	WriteFamilies(&b, fams)
	if b.String() != text {
		t.Errorf("round trip changed the exposition:\n--- in ---\n%s\n--- out ---\n%s", text, b.String())
	}
	if err := Lint(b.String()); err != nil {
		t.Errorf("re-rendered exposition fails lint: %v", err)
	}
}

// TestParseHistogramAttachment checks that _bucket/_sum/_count samples
// land inside their declared histogram family, not as stray families.
func TestParseHistogramAttachment(t *testing.T) {
	fams, err := ParseText(renderRegistry(t, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	var hist *ParsedFamily
	for _, f := range fams {
		if f.Name == "asc_latency_seconds" {
			hist = f
		}
		if strings.HasPrefix(f.Name, "asc_latency_seconds_") {
			t.Errorf("histogram child %s surfaced as its own family", f.Name)
		}
	}
	if hist == nil {
		t.Fatal("histogram family missing")
	}
	if hist.Type != "histogram" {
		t.Fatalf("family type = %q, want histogram", hist.Type)
	}
	// 3 finite buckets + +Inf + _sum + _count.
	if len(hist.Samples) != 6 {
		t.Fatalf("histogram carries %d samples, want 6: %+v", len(hist.Samples), hist.Samples)
	}
}

// TestMergeWithBackendLabel is the gateway's per-backend view: two
// backends' expositions merge with a backend label and every sample
// stays distinguishable and lint-clean.
func TestMergeWithBackendLabel(t *testing.T) {
	a, err := ParseText(renderRegistry(t, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseText(renderRegistry(t, 9, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, fams := range [][]*ParsedFamily{a, b} {
		name := "node-a:8642"
		if &fams[0] == &b[0] {
			name = "node-b:8642"
		}
		for _, f := range fams {
			for i := range f.Samples {
				f.Samples[i] = f.Samples[i].WithLabel("backend", name)
			}
		}
	}
	merged := MergeFamilies(a, b)
	var sb strings.Builder
	WriteFamilies(&sb, merged)
	out := sb.String()
	if err := Lint(out); err != nil {
		t.Fatalf("merged exposition fails lint: %v\n%s", err, out)
	}
	if !strings.Contains(out, `asc_runs_total{backend="node-a:8642"} 5`) ||
		!strings.Contains(out, `asc_runs_total{backend="node-b:8642"} 9`) {
		t.Errorf("per-backend counter samples missing:\n%s", out)
	}
	// The backend label must ride along on vec samples too, and stay
	// before le on histogram buckets (renderer convention).
	if !strings.Contains(out, `asc_cache_hits_total{tier="program",backend="node-a:8642"} 1`) {
		t.Errorf("vec sample missing backend label:\n%s", out)
	}
	if !strings.Contains(out, `asc_latency_seconds_bucket{backend="node-a:8642",le="0.1"} 1`) {
		t.Errorf("histogram bucket label order wrong:\n%s", out)
	}
}

// TestSumSamples is the gateway's fleet view: identical label tuples sum
// (counters add, histogram buckets merge element-wise) and the result
// still lints — cumulative buckets, +Inf == count.
func TestSumSamples(t *testing.T) {
	a, err := ParseText(renderRegistry(t, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseText(renderRegistry(t, 9, 2))
	if err != nil {
		t.Fatal(err)
	}
	merged := MergeFamilies(a, b)
	for _, f := range merged {
		f.SumSamples()
	}
	var sb strings.Builder
	WriteFamilies(&sb, merged)
	out := sb.String()
	if err := Lint(out); err != nil {
		t.Fatalf("summed exposition fails lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"asc_runs_total 14",                       // 5 + 9
		`asc_cache_hits_total{tier="program"} 3`,  // 1 + 2
		`asc_cache_hits_total{tier="pool"} 5`,     // 2 + 3
		`asc_latency_seconds_bucket{le="+Inf"} 4`, // 2 observations per backend
		"asc_latency_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summed view missing %q:\n%s", want, out)
		}
	}
}

// TestParseTextErrors rejects structurally malformed expositions instead
// of merging garbage into a fleet scrape.
func TestParseTextErrors(t *testing.T) {
	for _, bad := range []string{
		"asc_x{le=\"0.1\" 1",      // unbalanced braces
		"asc_x notanumber",        // unparseable value
		"asc_x{novalue} 1",        // label without =
		`asc_x{l="unterminated 1`, // unterminated label value
	} {
		if _, err := ParseText(bad); err == nil {
			t.Errorf("ParseText(%q) accepted malformed input", bad)
		}
	}
}

// TestParseEscapes round-trips escaped help text and label values.
func TestParseEscapes(t *testing.T) {
	in := "# HELP asc_x line\\nbreak and \\\\slash\n# TYPE asc_x counter\nasc_x{p=\"a\\\"b\\nc\"} 1\n"
	fams, err := ParseText(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 {
		t.Fatalf("got %d families, want 1", len(fams))
	}
	if fams[0].Help != "line\nbreak and \\slash" {
		t.Errorf("help unescaped wrong: %q", fams[0].Help)
	}
	if v := fams[0].Samples[0].Labels[0].Value; v != "a\"b\nc" {
		t.Errorf("label value unescaped wrong: %q", v)
	}
	var b strings.Builder
	WriteFamilies(&b, fams)
	if b.String() != in {
		t.Errorf("escape round trip changed text:\n in: %q\nout: %q", in, b.String())
	}
}
