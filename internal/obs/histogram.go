package obs

import (
	"math"
	"sort"
	"sync"
)

// Histogram is a fixed-bucket histogram. Bucket semantics follow
// Prometheus: an observation v lands in the first bucket whose upper bound
// is >= v; observations past the last finite bound land in the implicit
// +Inf overflow bucket and are reported there honestly (see Quantile and
// Overflow) instead of being folded into the last finite bucket.
type Histogram struct {
	bounds []float64 // ascending, finite

	mu        sync.Mutex
	counts    []int64 // len(bounds)+1; the final slot is the +Inf bucket
	total     int64
	sum       float64
	exemplars []*Exemplar // len(bounds)+1 when any exemplar was recorded
}

// Exemplar is an OpenMetrics exemplar: a reference from one histogram
// bucket (or counter sample) to a concrete observation — in this fleet, a
// trace id — rendered after the sample as `# {labels} value timestamp`.
type Exemplar struct {
	Labels []Label
	Value  float64
	Ts     float64 // unix seconds; 0 omits the timestamp
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]int64, len(bounds)+1),
	}
}

// Observe records one value. The bucket is found by binary search
// (sort.SearchFloat64s), not a linear scan.
func (h *Histogram) Observe(v float64) {
	// SearchFloat64s returns the smallest i with bounds[i] >= v, which is
	// exactly the `le` bucket; v past every finite bound yields
	// len(bounds), the +Inf slot.
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sum += v
	h.mu.Unlock()
}

// ObserveWithExemplar records one value and attaches an exemplar to the
// bucket it lands in, replacing that bucket's previous exemplar (latest
// wins — the point of an exemplar is a recent, retrievable instance).
// ts is the observation time in unix seconds.
func (h *Histogram) ObserveWithExemplar(v float64, ts float64, labels ...Label) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sum += v
	if h.exemplars == nil {
		h.exemplars = make([]*Exemplar, len(h.bounds)+1)
	}
	h.exemplars[i] = &Exemplar{Labels: labels, Value: v, Ts: ts}
	h.mu.Unlock()
}

// Quantile returns an upper-bound estimate of quantile q (0 < q <= 1): the
// upper bound of the bucket containing the q-th ranked observation, or 0
// when the histogram is empty. A rank that lands in the +Inf overflow
// bucket is reported as math.Inf(1) — the histogram does not pretend such
// observations fit under the last finite bound; callers that need a finite
// number must clamp explicitly and should surface Overflow alongside it.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Overflow returns how many observations exceeded the last finite bucket
// bound (the +Inf bucket count).
func (h *Histogram) Overflow() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.counts[len(h.bounds)]
}

// MaxBound returns the largest finite bucket bound (0 if there are no
// buckets); callers clamping an overflowed Quantile use it as the explicit
// saturation point.
func (h *Histogram) MaxBound() float64 {
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshot copies the counts, total, sum, and per-bucket exemplars under
// the lock. exemplars is nil when none were ever recorded.
func (h *Histogram) snapshot() (counts []int64, total int64, sum float64, exemplars []*Exemplar) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.exemplars != nil {
		exemplars = append([]*Exemplar(nil), h.exemplars...)
	}
	return append([]int64(nil), h.counts...), h.total, h.sum, exemplars
}
