package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.NewGauge("test_gauge", "x")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestVecChildIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_outcomes_total", "x", "outcome")
	a := v.With("ok")
	b := v.With("ok")
	if a != b {
		t.Error("With returned distinct children for the same label value")
	}
	a.Inc()
	if got := v.With("ok").Value(); got != 1 {
		t.Errorf("child value = %d, want 1", got)
	}
	if got := v.With("err").Value(); got != 0 {
		t.Errorf("distinct child value = %d, want 0", got)
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	for _, name := range []string{"Bad", "9starts_with_digit", "has-dash", "has space", ""} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			NewRegistry().NewCounter(name, "x")
		}()
	}
	// Duplicate registration must panic too.
	func() {
		r := NewRegistry()
		r.NewCounter("dup_total", "x")
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration did not panic")
			}
		}()
		r.NewCounter("dup_total", "x")
	}()
}

// TestHistogramBuckets pins the le semantics: an observation equal to a
// bound lands in that bound's bucket (binary search via
// sort.SearchFloat64s), above every bound in the +Inf overflow.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "x", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 5, 100} {
		h.Observe(v)
	}
	counts, total, sum, _ := h.snapshot()
	want := []int64{2, 2, 1, 2} // le=1: {0.5,1}; le=2: {1.5,2}; le=4: {4}; +Inf: {5,100}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], w)
		}
	}
	if total != 7 {
		t.Errorf("total = %d, want 7", total)
	}
	if sum != 114 {
		t.Errorf("sum = %v, want 114", sum)
	}
	if got := h.Overflow(); got != 2 {
		t.Errorf("overflow = %d, want 2", got)
	}
}

// TestHistogramQuantileOverflow is the satellite regression: a quantile
// that lands past the last finite bound must be reported as +Inf, not
// silently clamped to the last bound.
func TestHistogramQuantileOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "x", []float64{1, 2})
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	h.Observe(0.5)
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %v, want 1", got)
	}
	// 99 of 100 observations past the last bound: p50 and p99 both
	// overflow and must say so.
	for i := 0; i < 99; i++ {
		h.Observe(10)
	}
	if got := h.Quantile(0.99); !math.IsInf(got, 1) {
		t.Errorf("overflowed p99 = %v, want +Inf", got)
	}
	if got := h.MaxBound(); got != 2 {
		t.Errorf("MaxBound = %v, want 2", got)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "x", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 3, 3, 7, 7, 7} {
		h.Observe(v)
	}
	last := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < last {
			t.Errorf("quantile(%v) = %v < quantile of lower q %v", q, v, last)
		}
		last = v
	}
}

func TestGaugeFuncAndCollect(t *testing.T) {
	r := NewRegistry()
	n := 0
	r.NewGaugeFunc("test_depth", "x", func() float64 { n++; return float64(n) })
	mirror := r.NewCounter("test_mirrored_total", "x")
	r.OnCollect(func() { mirror.Set(42) })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "test_depth 1") {
		t.Errorf("gauge func not rendered:\n%s", out)
	}
	if !strings.Contains(out, "test_mirrored_total 42") {
		t.Errorf("collect callback did not run:\n%s", out)
	}
}

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"go_goroutines ", "go_memstats_heap_alloc_bytes ", "go_gc_cycles_total "} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime exposition missing %q", want)
		}
	}
	if err := Lint(out); err != nil {
		t.Errorf("runtime exposition fails lint: %v", err)
	}
}

// TestConcurrentInstruments hammers every instrument type from many
// goroutines; run under -race this is the package's data-race check.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "x")
	v := r.NewCounterVec("test_vec_total", "x", "k")
	h := r.NewHistogram("test_seconds", "x", []float64{0.1, 1, 10})
	g := r.NewGauge("test_gauge", "x")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				v.With([]string{"a", "b", "c"}[j%3]).Inc()
				h.Observe(float64(j) / 100)
				g.Set(int64(j))
				if j%100 == 0 {
					var b strings.Builder
					r.WritePrometheus(&b)
				}
			}
		}(i)
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
