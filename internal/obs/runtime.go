package obs

import "runtime"

// RegisterRuntime adds Go runtime gauges (goroutines, heap, GC) to the
// registry, refreshed once per scrape by a single ReadMemStats so a scrape
// pays at most one stop-the-world pause. ascd mounts a registry with these
// on its -debug-addr listener next to net/http/pprof.
func RegisterRuntime(r *Registry) {
	goroutines := r.NewGauge("go_goroutines", "Number of goroutines that currently exist.")
	heapAlloc := r.NewGauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.")
	heapSys := r.NewGauge("go_memstats_heap_sys_bytes", "Bytes of heap memory obtained from the OS.")
	heapObjects := r.NewGauge("go_memstats_heap_objects", "Number of allocated heap objects.")
	nextGC := r.NewGauge("go_memstats_next_gc_bytes", "Heap size target of the next GC cycle.")
	gcCycles := r.NewCounter("go_gc_cycles_total", "Completed GC cycles.")
	gcPause := r.NewCounter("go_gc_pause_ns_total", "Cumulative GC stop-the-world pause time in nanoseconds.")
	r.OnCollect(func() {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heapAlloc.Set(int64(m.HeapAlloc))
		heapSys.Set(int64(m.HeapSys))
		heapObjects.Set(int64(m.HeapObjects))
		nextGC.Set(int64(m.NextGC))
		gcCycles.Set(int64(m.NumGC))
		gcPause.Set(int64(m.PauseTotalNs))
	})
}
