// Package obs is a dependency-free metrics core for the serving stack: a
// registry of counters, gauges, and histograms (each optionally with
// labeled children) that renders the Prometheus text exposition format
// v0.0.4. It exists so ascd can export the simulator's paper-relevant
// signals — stall cycles by hazard kind, reduction-tree occupancy, request
// latency — to a standard scraper without pulling a client library into
// the module.
//
// Instruments are created through a Registry and are safe for concurrent
// use. Values that live outside the registry (pool statistics, runtime
// memory stats) are mirrored in at scrape time via OnCollect callbacks.
package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

var (
	// nameRE is the metric-name grammar this registry enforces. It is
	// deliberately stricter than Prometheus (no uppercase) so every name
	// is already in canonical exporter style.
	nameRE  = regexp.MustCompile(`^[a-z_:][a-z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
)

// Registry holds metric families and renders them for scraping.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

// family is one metric name: its metadata and its children (one per
// distinct label-value tuple; a single unlabeled child for plain
// instruments).
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string
	bounds []float64 // histogram bucket upper bounds, ascending, finite

	mu       sync.Mutex
	children map[string]any // *Counter, *Gauge, or *Histogram, keyed by joined label values
	order    []string
	fn       func() float64 // value callback for NewGaugeFunc families
}

// childKeySep joins label values into a map key; it cannot appear in a
// label value rendered from a Go string without also being escaped here,
// so tuples never collide.
const childKeySep = "\x1f"

func (r *Registry) register(name, help, typ string, labels []string, bounds []float64, fn func() float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRE.MatchString(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bucket bounds not ascending", name))
		}
	}
	f := &family{
		name: name, help: help, typ: typ, labels: labels,
		bounds: bounds, children: map[string]any{}, fn: fn,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.families[name] = f
	return f
}

// OnCollect registers fn to run at the start of every scrape, before
// rendering. Collect callbacks mirror externally maintained values into
// instruments (Counter.Set, Gauge.Set); they must not register new
// metrics.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// child returns the instrument for one label-value tuple, creating it with
// mk on first use.
func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, childKeySep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := mk()
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must be non-negative.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Set overwrites the counter. It exists only for OnCollect callbacks that
// mirror an externally maintained monotonic total (e.g. pool hit counts);
// normal code paths must use Inc/Add.
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Value reads the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// CounterVec is a counter family with labeled children.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values, creating it
// on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with labeled children.
type GaugeVec struct{ f *family }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil, nil, nil)
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, "counter", labels, nil, nil)}
}

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil, nil, nil)
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// NewGaugeVec registers a gauge family with the given label names.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, "gauge", labels, nil, nil)}
}

// NewGaugeFunc registers a gauge whose value is computed by fn at every
// scrape (e.g. queue depth, goroutine count).
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", nil, nil, fn)
}

// NewHistogram registers an unlabeled histogram with the given ascending
// finite bucket upper bounds; the +Inf overflow bucket is implicit.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, "histogram", nil, bounds, nil)
	return f.child(nil, func() any { return newHistogram(f.bounds) }).(*Histogram)
}

// HistogramVec is a histogram family with labeled children.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

// NewHistogramVec registers a histogram family with labeled children.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, "histogram", labels, bounds, nil)}
}

// snapshotFamilies returns the families sorted by name after running the
// collect callbacks.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	// Collectors run outside the registry lock: they only touch family
	// children, and running them unlocked keeps a slow callback from
	// blocking registration.
	for _, fn := range collectors {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
