package obs

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exemplarRegistry is the deterministic fixture for the exemplar golden:
// histograms whose buckets carry trace-id exemplars, with and without
// timestamps, plain and vec.
func exemplarRegistry() *Registry {
	r := NewRegistry()
	h := r.NewHistogram("test_duration_seconds", "Request latency.", []float64{0.1, 1, 10})
	h.Observe(0.2) // no exemplar on this bucket
	h.ObserveWithExemplar(0.05, 1754524800.125, Label{Name: "trace_id", Value: "4bf92f3577b34da6a3ce929d0e0e4736"})
	h.ObserveWithExemplar(5, 0, Label{Name: "trace_id", Value: "00f067aa0ba902b74bf92f3577b34da6"}) // ts omitted
	h.ObserveWithExemplar(100, 1754524801, Label{Name: "trace_id", Value: "deadbeefdeadbeefdeadbeefdeadbeef"},
		Label{Name: "request_id", Value: "req-42"}) // +Inf bucket, two labels
	hv := r.NewHistogramVec("test_stage_seconds", "Stage latency.", []float64{0.5, 2}, "stage")
	hv.With("compile").ObserveWithExemplar(0.25, 1754524800.5, Label{Name: "trace_id", Value: "cafecafecafecafecafecafecafecafe"})
	hv.With("simulate").Observe(1)
	return r
}

// TestExemplarGolden pins the rendered exemplar syntax: each exemplar
// rides its bucket line as `# {labels} value [ts]`, buckets without
// exemplars render exactly as before, and the whole exposition stays
// lint-clean and parseable.
func TestExemplarGolden(t *testing.T) {
	var b strings.Builder
	if err := exemplarRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "exemplar.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exemplar rendering drifted from golden (run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if err := Lint(got); err != nil {
		t.Errorf("exemplar exposition fails lint: %v", err)
	}
}

// TestExemplarParse checks the parser recovers exemplars structurally:
// bucket line with exemplar → ParsedSample.Exemplar populated, labels and
// value and timestamp intact.
func TestExemplarParse(t *testing.T) {
	var b strings.Builder
	if err := exemplarRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(b.String())
	if err != nil {
		t.Fatal(err)
	}
	var hist *ParsedFamily
	for _, f := range fams {
		if f.Name == "test_duration_seconds" {
			hist = f
		}
	}
	if hist == nil {
		t.Fatal("histogram family missing")
	}
	byLE := map[string]ParsedSample{}
	for _, s := range hist.Samples {
		if s.Name != "test_duration_seconds_bucket" {
			continue
		}
		for _, l := range s.Labels {
			if l.Name == "le" {
				byLE[l.Value] = s
			}
		}
	}
	ex := byLE["0.1"].Exemplar
	if ex == nil {
		t.Fatal("le=0.1 bucket lost its exemplar")
	}
	if len(ex.Labels) != 1 || ex.Labels[0].Name != "trace_id" ||
		ex.Labels[0].Value != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("exemplar labels = %+v", ex.Labels)
	}
	if ex.Value != 0.05 || ex.Ts != 1754524800.125 {
		t.Errorf("exemplar value/ts = %v/%v", ex.Value, ex.Ts)
	}
	if byLE["1"].Exemplar != nil {
		t.Error("le=1 bucket (plain Observe) grew an exemplar")
	}
	if noTs := byLE["10"].Exemplar; noTs == nil || noTs.Ts != 0 {
		t.Errorf("ts-less exemplar wrong: %+v", noTs)
	}
	if inf := byLE["+Inf"].Exemplar; inf == nil || len(inf.Labels) != 2 {
		t.Errorf("+Inf exemplar wrong: %+v", inf)
	}
}

// randomRegistry renders a seed-determined registry mixing every
// instrument kind with randomized names, label values (including escape
// characters), observation placement, and exemplars.
func randomRegistry(t *testing.T, rng *rand.Rand) string {
	t.Helper()
	r := NewRegistry()
	hexDigits := "0123456789abcdef"
	randHex := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = hexDigits[rng.Intn(16)]
		}
		return string(b)
	}
	labelVals := []string{"plain", `quo"te`, `back\slash`, "new\nline", "", "x y z"}

	nc := rng.Intn(3)
	for i := 0; i < nc; i++ {
		c := r.NewCounter(fmt.Sprintf("rt_c%d_total", i), "Counter.")
		c.Add(int64(rng.Intn(1000)))
	}
	if rng.Intn(2) == 0 {
		cv := r.NewCounterVec("rt_cv_total", "Counter vec.", "kind")
		for i := 0; i < 1+rng.Intn(3); i++ {
			cv.With(labelVals[rng.Intn(len(labelVals))]).Add(int64(rng.Intn(50)))
		}
	}
	if rng.Intn(2) == 0 {
		g := r.NewGauge("rt_depth", "Gauge.")
		g.Set(int64(rng.Intn(100)))
	}
	nh := 1 + rng.Intn(2)
	for i := 0; i < nh; i++ {
		h := r.NewHistogram(fmt.Sprintf("rt_h%d_seconds", i), "Histogram.", []float64{0.01, 0.1, 1, 10})
		for j := 0; j < rng.Intn(8); j++ {
			v := rng.Float64() * 20
			if rng.Intn(2) == 0 {
				ts := 0.0
				if rng.Intn(3) > 0 {
					// Millisecond-resolution unix timestamps: what the fleet
					// actually stamps, and exactly representable in float64.
					ts = float64(rng.Int63n(2_000_000_000_000)) / 1000
				}
				h.ObserveWithExemplar(v, ts, Label{Name: "trace_id", Value: randHex(32)})
			} else {
				h.Observe(v)
			}
		}
	}
	if rng.Intn(2) == 0 {
		// Always at least one child: a declared family with zero samples is
		// dropped by WriteFamilies, which would (correctly) break the
		// byte-identity property.
		hv := r.NewHistogramVec("rt_hv_seconds", "Histogram vec.", []float64{0.5, 5}, "stage")
		for j := 0; j < 1+rng.Intn(5); j++ {
			stage := []string{"compile", "exec", "peel"}[rng.Intn(3)]
			if rng.Intn(2) == 0 {
				hv.With(stage).ObserveWithExemplar(rng.Float64()*8, float64(rng.Int63n(2_000_000_000)),
					Label{Name: "trace_id", Value: randHex(32)})
			} else {
				hv.With(stage).Observe(rng.Float64() * 8)
			}
		}
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestParseWriteFixedPoint is the property test: for any lint-clean
// exposition this package renders — exemplars, escapes, vecs and all —
// ParseText followed by WriteFamilies reproduces the text byte-for-byte,
// and parsing the re-rendered text yields the same families again.
func TestParseWriteFixedPoint(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		text := randomRegistry(t, rng)
		if err := Lint(text); err != nil {
			t.Fatalf("seed %d: rendered exposition not lint-clean: %v\n%s", seed, err, text)
		}
		fams, err := ParseText(text)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, text)
		}
		var b strings.Builder
		WriteFamilies(&b, fams)
		if b.String() != text {
			t.Fatalf("seed %d: parse∘write is not a fixed point:\n--- in ---\n%s\n--- out ---\n%s",
				seed, text, b.String())
		}
		// Idempotence: a second pass must also be stable.
		fams2, err := ParseText(b.String())
		if err != nil {
			t.Fatalf("seed %d: re-parse failed: %v", seed, err)
		}
		var b2 strings.Builder
		WriteFamilies(&b2, fams2)
		if b2.String() != b.String() {
			t.Fatalf("seed %d: second round trip drifted", seed)
		}
	}
}

// TestExemplarThroughMerge drives the gateway's merge paths: WithLabel
// must carry the exemplar, and SumSamples must keep the newest exemplar
// (greatest timestamp) when collapsing identical tuples.
func TestExemplarThroughMerge(t *testing.T) {
	render := func(ts float64, trace string) string {
		r := NewRegistry()
		h := r.NewHistogram("rt_seconds", "x", []float64{1})
		h.ObserveWithExemplar(0.5, ts, Label{Name: "trace_id", Value: trace})
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, err := ParseText(render(100, "aaaa"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseText(render(200, "bbbb"))
	if err != nil {
		t.Fatal(err)
	}

	// Per-backend view: the backend label rides along, exemplar intact.
	labeled := a[0].Samples[0].WithLabel("backend", "node-a")
	if labeled.Exemplar == nil || labeled.Exemplar.Labels[0].Value != "aaaa" {
		t.Fatalf("WithLabel dropped the exemplar: %+v", labeled)
	}

	// Fleet view: values sum, newest exemplar wins.
	merged := MergeFamilies(a, b)
	for _, f := range merged {
		f.SumSamples()
	}
	var sb strings.Builder
	WriteFamilies(&sb, merged)
	out := sb.String()
	if err := Lint(out); err != nil {
		t.Fatalf("summed exemplar exposition fails lint: %v\n%s", err, out)
	}
	if !strings.Contains(out, `rt_seconds_bucket{le="1"} 2 # {trace_id="bbbb"} 0.5 200`) {
		t.Errorf("summed bucket must keep the newest exemplar:\n%s", out)
	}
}

// TestLintExemplarPlacement: exemplars belong on counter samples and
// histogram buckets only, and must themselves parse.
func TestLintExemplarPlacement(t *testing.T) {
	bad := []struct{ name, text string }{
		{"gauge exemplar", "# HELP g x\n# TYPE g gauge\ng 1 # {trace_id=\"a\"} 1\n"},
		{"sum exemplar", "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_sum 1 # {trace_id=\"a\"} 1\nh_count 1\n"},
		{"count exemplar", "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1 # {trace_id=\"a\"} 1\n"},
		{"labelless exemplar", "# HELP c_total x\n# TYPE c_total counter\nc_total 1 # 0.5\n"},
		{"unbalanced exemplar braces", "# HELP c_total x\n# TYPE c_total counter\nc_total 1 # {trace_id=\"a\" 0.5\n"},
		{"valueless exemplar", "# HELP c_total x\n# TYPE c_total counter\nc_total 1 # {trace_id=\"a\"}\n"},
		{"bad exemplar ts", "# HELP c_total x\n# TYPE c_total counter\nc_total 1 # {trace_id=\"a\"} 0.5 xyz\n"},
	}
	for _, tc := range bad {
		if err := Lint(tc.text); err == nil {
			t.Errorf("%s: lint accepted bad exposition", tc.name)
		}
	}
	good := "# HELP c_total x\n# TYPE c_total counter\nc_total 1 # {trace_id=\"abc\"} 0.5 1754524800.125\n" +
		"# HELP h x\n# TYPE h histogram\n" +
		"h_bucket{le=\"1\"} 1 # {trace_id=\"def\"} 0.5\nh_bucket{le=\"+Inf\"} 1\nh_sum 0.5\nh_count 1\n"
	if err := Lint(good); err != nil {
		t.Errorf("lint rejected valid exemplar exposition: %v", err)
	}
}
