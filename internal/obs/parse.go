package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format: a parser for the
// text this package renders (and any v0.0.4-compatible exporter emits),
// plus helpers to relabel, merge, and re-render parsed families. ascgw
// uses it to serve a fleet-wide /metrics: each backend's scrape is parsed,
// tagged with a backend label (or summed across backends), merged with the
// gateway's own registry output, and rendered back out lint-clean.

// ParsedSample is one sample line of a parsed exposition: the full sample
// name (histogram samples keep their _bucket/_sum/_count suffix), its
// label pairs in rendered order, the value, and the OpenMetrics exemplar
// when the line carried one.
type ParsedSample struct {
	Name     string
	Labels   []Label
	Value    float64
	Exemplar *Exemplar
}

// Label is one label pair of a parsed sample.
type Label struct {
	Name  string
	Value string
}

// ParsedFamily is one metric family of a parsed exposition.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge", "histogram", or "untyped"
	Samples []ParsedSample
}

// ParseText parses a Prometheus text exposition (format v0.0.4) into its
// families, preserving family and sample order. Samples with no preceding
// TYPE line land in an "untyped" family. It accepts the subset of the
// format this package renders — which is also what every backend in an
// asc fleet emits — and returns an error on anything structurally
// malformed (unbalanced braces, unparseable values).
func ParseText(text string) ([]*ParsedFamily, error) {
	var fams []*ParsedFamily
	byName := map[string]*ParsedFamily{}
	family := func(name string) *ParsedFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &ParsedFamily{Name: name, Type: "untyped"}
		byName[name] = f
		fams = append(fams, f)
		return f
	}

	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			parts := strings.SplitN(rest, " ", 2)
			f := family(parts[0])
			if len(parts) == 2 {
				f.Help = unescapeHelp(parts[1])
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				return nil, fmt.Errorf("obs: line %d: malformed TYPE line %q", lineNo, line)
			}
			family(parts[0]).Type = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}

		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		// Histogram child samples attach to their base family when one is
		// declared; a bare _bucket/_sum/_count with no histogram TYPE stays
		// its own untyped family.
		base := s.Name
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(s.Name, sfx) {
				if f, ok := byName[strings.TrimSuffix(s.Name, sfx)]; ok && f.Type == "histogram" {
					base = strings.TrimSuffix(s.Name, sfx)
					break
				}
			}
		}
		family(base).Samples = append(family(base).Samples, s)
	}
	return fams, nil
}

// parseSample splits one sample line:
//
//	name[{labels}] value [timestamp] [# {exemplar-labels} value [timestamp]]
//
// The sample's label block is terminated by the first close brace outside a
// quoted label value — not the last brace on the line, which would swallow
// an exemplar's label set.
func parseSample(line string) (ParsedSample, error) {
	var s ParsedSample
	rest := line
	// A sample's label block opens immediately after the metric name — a
	// '{' past the first whitespace belongs to an exemplar, not the sample.
	if i := strings.IndexAny(line, " \t{"); i >= 0 && line[i] == '{' {
		j := labelBlockEnd(line, i+1)
		if j < 0 {
			return s, fmt.Errorf("unbalanced braces in %q", line)
		}
		s.Name = line[:i]
		var err error
		if s.Labels, err = parseLabels(line[i+1 : j]); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		if i < 0 {
			return s, fmt.Errorf("sample without value: %q", line)
		}
		s.Name = line[:i]
		rest = strings.TrimSpace(line[i:])
	}
	// Everything before a '#' (if any) is value [timestamp]; after it, the
	// exemplar. The value/timestamp region contains no quotes, so a plain
	// byte scan is safe.
	exPart := ""
	if h := strings.IndexByte(rest, '#'); h >= 0 {
		exPart = strings.TrimSpace(rest[h+1:])
		rest = strings.TrimSpace(rest[:h])
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("sample without value: %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("unparseable sample value %q", fields[0])
	}
	s.Value = v
	if exPart != "" {
		ex, err := parseExemplar(exPart)
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Exemplar = ex
	}
	return s, nil
}

// labelBlockEnd returns the index of the '}' closing a label block whose
// body starts at `start`, honouring quoted label values (a '}' inside
// quotes, or a backslash-escaped quote, does not terminate the block).
// Returns -1 when the block never closes.
func labelBlockEnd(line string, start int) int {
	inQuote := false
	for i := start; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// parseExemplar parses the suffix after a sample line's '#':
// `{labels} value [timestamp]`.
func parseExemplar(part string) (*Exemplar, error) {
	if len(part) == 0 || part[0] != '{' {
		return nil, fmt.Errorf("exemplar without label set")
	}
	j := labelBlockEnd(part, 1)
	if j < 0 {
		return nil, fmt.Errorf("unbalanced exemplar braces")
	}
	labels, err := parseLabels(part[1:j])
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(part[j+1:])
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("malformed exemplar value")
	}
	ex := &Exemplar{Labels: labels}
	if ex.Value, err = strconv.ParseFloat(fields[0], 64); err != nil {
		return nil, fmt.Errorf("unparseable exemplar value %q", fields[0])
	}
	if len(fields) == 2 {
		if ex.Ts, err = strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, fmt.Errorf("unparseable exemplar timestamp %q", fields[1])
		}
	}
	return ex, nil
}

// parseLabels splits a rendered label body (`k="v",k2="v2"`), undoing the
// exposition escapes.
func parseLabels(body string) ([]Label, error) {
	var out []Label
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", body)
		}
		name := strings.TrimSpace(body[:eq])
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", body)
		}
		rest = rest[1:]
		var b strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("unterminated label value in %q", body)
		}
		out = append(out, Label{Name: name, Value: b.String()})
		rest = strings.TrimSpace(rest[i+1:])
		body = strings.TrimPrefix(rest, ",")
	}
	return out, nil
}

func unescapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\n`, "\n")
	return strings.ReplaceAll(h, `\\`, `\`)
}

// WithLabel returns a copy of s with the given label pair appended (after
// any existing labels, before a histogram le pair if present — position
// does not matter to scrapers, only the set does, but keeping le last
// matches this package's renderer).
func (s ParsedSample) WithLabel(name, value string) ParsedSample {
	labels := make([]Label, 0, len(s.Labels)+1)
	inserted := false
	for _, l := range s.Labels {
		if l.Name == "le" && !inserted {
			labels = append(labels, Label{Name: name, Value: value})
			inserted = true
		}
		labels = append(labels, l)
	}
	if !inserted {
		labels = append(labels, Label{Name: name, Value: value})
	}
	return ParsedSample{Name: s.Name, Labels: labels, Value: s.Value, Exemplar: s.Exemplar}
}

// labelKey is the sample's identity for merging: name plus sorted label
// pairs.
func (s ParsedSample) labelKey() string {
	pairs := make([]string, len(s.Labels))
	for i, l := range s.Labels {
		pairs[i] = l.Name + "\x1f" + l.Value
	}
	sort.Strings(pairs)
	return s.Name + "\x1e" + strings.Join(pairs, "\x1f\x1f")
}

// MergeFamilies folds src into dst (both keyed by family name, ordered):
// families new to dst are appended; families present in both get src's
// samples appended after dst's. Sample identities are not deduplicated —
// callers distinguish same-name samples with a label (WithLabel) or sum
// them first (SumSamples).
func MergeFamilies(dst []*ParsedFamily, src []*ParsedFamily) []*ParsedFamily {
	byName := make(map[string]*ParsedFamily, len(dst))
	for _, f := range dst {
		byName[f.Name] = f
	}
	for _, f := range src {
		d, ok := byName[f.Name]
		if !ok {
			cp := &ParsedFamily{Name: f.Name, Help: f.Help, Type: f.Type,
				Samples: append([]ParsedSample(nil), f.Samples...)}
			byName[f.Name] = cp
			dst = append(dst, cp)
			continue
		}
		if d.Help == "" {
			d.Help = f.Help
		}
		if d.Type == "untyped" && f.Type != "" {
			d.Type = f.Type
		}
		d.Samples = append(d.Samples, f.Samples...)
	}
	return dst
}

// SumSamples collapses samples with identical name and label tuple by
// summing their values, preserving first-seen order. Applied to the same
// family scraped from N backends, it yields the fleet-wide view: counters
// and gauges sum, and histogram _bucket/_sum/_count series merge
// element-wise (backends built from one binary share bucket bounds, so
// per-le sums remain cumulative).
func (f *ParsedFamily) SumSamples() {
	byKey := make(map[string]int, len(f.Samples))
	out := f.Samples[:0]
	for _, s := range f.Samples {
		k := s.labelKey()
		if i, ok := byKey[k]; ok {
			out[i].Value += s.Value
			// Exemplars don't sum; the most recent observation wins so the
			// fleet view points at a live, retrievable trace.
			if s.Exemplar != nil && (out[i].Exemplar == nil || s.Exemplar.Ts > out[i].Exemplar.Ts) {
				out[i].Exemplar = s.Exemplar
			}
			continue
		}
		byKey[k] = len(out)
		out = append(out, s)
	}
	f.Samples = out
}

// WriteFamilies renders families back into text exposition form, sorted
// by family name, with HELP/TYPE lines preceding samples — the same shape
// WritePrometheus produces, so output from a merge passes Lint.
func WriteFamilies(b *strings.Builder, fams []*ParsedFamily) {
	sorted := append([]*ParsedFamily(nil), fams...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, f := range sorted {
		if len(f.Samples) == 0 {
			continue
		}
		// HELP always precedes TYPE, even when empty: Lint (and strict
		// scrapers) require the pair in that order.
		fmt.Fprintf(b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		typ := f.Type
		if typ == "" {
			typ = "untyped"
		}
		fmt.Fprintf(b, "# TYPE %s %s\n", f.Name, typ)
		for _, s := range f.Samples {
			b.WriteString(s.Name)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					fmt.Fprintf(b, `%s="%s"`, l.Name, escapeLabel(l.Value))
				}
				b.WriteByte('}')
			}
			fmt.Fprintf(b, " %s%s\n", formatFloat(s.Value), exemplarString(s.Exemplar))
		}
	}
}
