package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the text exposition format rendered
// by WritePrometheus.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus runs the collect callbacks and renders every family in
// Prometheus text exposition format v0.0.4: families sorted by name,
// HELP/TYPE lines before samples, histogram buckets cumulative and
// terminated by +Inf.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.snapshotFamilies() {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ServeHTTP makes a Registry mountable as a scrape endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ContentType)
	r.WritePrometheus(w)
}

func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	if f.fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(f.fn()))
		return
	}
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	// Deterministic output: children sorted by label-value tuple.
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return keys[idx[i]] < keys[idx[j]] })
	for _, i := range idx {
		values := []string(nil)
		if keys[i] != "" || len(f.labels) > 0 {
			values = strings.Split(keys[i], childKeySep)
		}
		switch c := children[i].(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), c.Value())
		case *Gauge:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), c.Value())
		case *Histogram:
			counts, total, sum, exemplars := c.snapshot()
			exemplarAt := func(bi int) *Exemplar {
				if exemplars == nil {
					return nil
				}
				return exemplars[bi]
			}
			var cum int64
			for bi, bound := range c.bounds {
				cum += counts[bi]
				fmt.Fprintf(b, "%s_bucket%s %d%s\n", f.name,
					labelString(f.labels, values, "le", formatFloat(bound)), cum,
					exemplarString(exemplarAt(bi)))
			}
			fmt.Fprintf(b, "%s_bucket%s %d%s\n", f.name,
				labelString(f.labels, values, "le", "+Inf"), total,
				exemplarString(exemplarAt(len(c.bounds))))
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), total)
		}
	}
}

// labelString renders {k="v",...}, appending the extra pair (for histogram
// le labels) when extraName is non-empty; it returns "" when there are no
// labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(v))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// exemplarString renders an OpenMetrics exemplar suffix — a space, `#`,
// the exemplar label set, the observed value, and (when present) the
// observation timestamp:
//
//	asc_request_duration_seconds_bucket{le="0.05"} 12 # {trace_id="4bf9…"} 0.043 1754524800.125
//
// Returns "" for a nil exemplar so sample lines without exemplars render
// exactly as before. The timestamp uses fixed-point shortest form
// (formatTs) so the text round-trips through ParseText/WriteFamilies.
func exemplarString(ex *Exemplar) string {
	if ex == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(" # {")
	for i, l := range ex.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	b.WriteString("} ")
	b.WriteString(formatFloat(ex.Value))
	if ex.Ts != 0 {
		b.WriteByte(' ')
		b.WriteString(formatTs(ex.Ts))
	}
	return b.String()
}

// formatTs renders an exemplar timestamp as shortest-round-trip
// fixed-point decimal ("1754524800.125"), the OpenMetrics timestamp shape.
func formatTs(ts float64) string {
	return strconv.FormatFloat(ts, 'f', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline are the only characters with escapes.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// formatFloat renders a sample or bound value: integers without a decimal
// point, everything else in Go's shortest-round-trip form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
