package asc

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

func TestProcessorResetMatchesFresh(t *testing.T) {
	src := `
		pidx p1
		padd p2, p1, p1
		rsum s1, p2
		sw s1, 0(s0)
		halt
	`
	cfg := Config{PEs: 8, Width: 32}
	p, err := New(cfg, MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	fresh := p.Snapshot()
	if _, err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Snapshot(), fresh) {
		t.Error("reset processor snapshot differs from fresh snapshot")
	}
	// The reset processor must produce the same result and cycle count as
	// the first run — pipeline and statistics state reset too.
	s1, err := p.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	q, err := New(cfg, MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := q.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Cycles != s2.Cycles || s1.Instructions != s2.Instructions {
		t.Errorf("rerun after reset: got %d cycles / %d insts, fresh run %d / %d",
			s1.Cycles, s1.Instructions, s2.Cycles, s2.Instructions)
	}
	if got, want := p.ScalarMem(0), q.ScalarMem(0); got != want {
		t.Errorf("rerun result %d, want %d", got, want)
	}
}

func TestProcessorSetProgramReloadsDataSegment(t *testing.T) {
	p, err := New(Config{PEs: 4, Width: 16}, MustAssemble(`
		lw s1, 0(s0)
		sw s1, 1(s0)
		halt
	.data
		.word 11
	`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := p.ScalarMem(1); got != 11 {
		t.Fatalf("first program result = %d, want 11", got)
	}
	if err := p.SetProgram(MustAssemble(`
		lw s1, 0(s0)
		addi s2, s1, 5
		sw s2, 2(s0)
		halt
	.data
		.word 30
	`)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := p.ScalarMem(2); got != 35 {
		t.Errorf("swapped program result = %d, want 35", got)
	}
	if got := p.ScalarMem(0); got != 30 {
		t.Errorf("data segment word = %d, want 30 (must be reloaded on SetProgram)", got)
	}
}

func TestConfigKey(t *testing.T) {
	if (Config{}).Key() != (Config{PEs: 16, Threads: 16, Width: 8, LocalMemWords: 1024, Arity: 4}).Key() {
		t.Error("zero config and explicit paper config should share a key")
	}
	if (Config{}).Key() == (Config{PEs: 32}).Key() {
		t.Error("different PE counts must produce different keys")
	}
	if (Config{}).Key() == (Config{SMT: true}).Key() {
		t.Error("SMT must be part of the key")
	}
	if (Config{Engine: EngineSerial}).Key() == (Config{Engine: EngineParallel}).Key() {
		t.Error("pinned host engines must produce different keys")
	}
}

func TestRunContextCancellation(t *testing.T) {
	p, err := New(Config{PEs: 4}, MustAssemble(`
	spin:
		j spin
	`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = p.RunContext(ctx, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext error = %v, want DeadlineExceeded", err)
	}
	// A canceled processor is recyclable.
	if err := p.SetProgram(MustAssemble(`
		li s1, 9
		sw s1, 0(s0)
		halt
	`)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := p.ScalarMem(0); got != 9 {
		t.Errorf("result after recycle = %d, want 9", got)
	}
}

func TestRunCycleLimitError(t *testing.T) {
	p, err := New(Config{PEs: 4}, MustAssemble(`
	spin:
		j spin
	`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(100); !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("Run error = %v, want ErrCycleLimit", err)
	}
}
