// Package asc is the public API of the MTASC library: a cycle-accurate
// simulator of the Multithreaded Associative SIMD Processor of Schaffer &
// Walker (IPDPS 2007), together with its assembler, the non-pipelined and
// coarse-grain-multithreaded baseline machines, an FPGA resource/clock
// model, and a library of associative kernels.
//
// Quick start:
//
//	prog, err := asc.Assemble(`
//		plw p1, 0(p0)     ; each PE loads its value
//		rmax s1, p1       ; global maximum in one instruction
//		sw s1, 0(s0)
//		halt
//	`)
//	proc, err := asc.New(asc.Config{PEs: 16, Threads: 16}, prog)
//	proc.LoadLocalMem(values)           // one row per PE
//	stats, err := proc.Run(0)
//	result := proc.ScalarMem(0)
//
// The simulator models the paper's split pipeline exactly: a k-ary
// pipelined broadcast tree (b = ceil(log_k p) stages), pipelined reduction
// trees (r = ceil(log2 p) stages), EX->B1 forwarding that removes broadcast
// hazards, the b+r-cycle reduction and broadcast-reduction hazards, and
// fine-grain multithreading with a rotating-priority scheduler that hides
// those hazards when enough threads are runnable.
//
// # Host execution engines
//
// Config.Engine selects how the simulator executes the PE array on the
// host: EngineSerial runs every PE on one goroutine; EngineParallel shards
// the PE range across a persistent worker pool, barrier-synced per
// parallel/reduction instruction, with per-shard reduction partials merged
// along the exact binary-tree topology of the hardware units. The default,
// EngineAuto, uses the sharded engine only when the host has more than one
// CPU and the array is large (>= 256 PEs), so paper-scale 16-PE runs never
// pay barrier overhead. The choice is architecturally invisible: engines
// are bit-identical (snapshots and cycle counts match exactly), so it is
// purely a host-performance knob for wide-array sweeps.
package asc

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/bits"

	"repro/internal/asm"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/debug"
	"repro/internal/fpga"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/trace"
)

// Config selects the architecture to simulate. The zero value gives the
// paper's prototype: 16 8-bit PEs, 16 hardware threads, 1 KB of local
// memory per PE, and a 4-ary broadcast tree.
type Config struct {
	// PEs is the number of processing elements (default 16).
	PEs int
	// Threads is the number of hardware thread contexts (default 16).
	Threads int
	// Width is the data width in bits: 8, 16, or 32 (default 8).
	Width uint
	// LocalMemWords is the PE local memory size in words (default 1024).
	LocalMemWords int
	// Arity is the broadcast tree arity k (default 4).
	Arity int
	// SeqMul selects the sequential multiplier instead of the pipelined
	// hard-block implementation (section 6.2 of the paper).
	SeqMul bool
	// FixedPriority replaces the rotating-priority scheduler with a fixed
	// lowest-thread-first policy (ablation).
	FixedPriority bool
	// SMT enables dual issue: one scalar-path and one parallel/reduction-
	// path instruction per cycle, from different hardware threads (the
	// paper's section 5 discusses SMT as the costlier multithreading
	// variant; the split pipeline has exactly two issue ports). IPC may
	// then exceed 1.0.
	SMT bool
	// TraceDepth keeps the most recent N instruction records for pipeline
	// diagrams (0 = off, -1 = keep all).
	TraceDepth int
	// Engine picks the host execution engine for the PE array: EngineAuto
	// (default; sharded when the host is multi-core and PEs >= 256),
	// EngineSerial, or EngineParallel. Architecturally invisible — results
	// and cycle counts are bit-identical across engines.
	Engine Engine
	// Blocks selects the block-dispatch tier: BlocksAuto (default)
	// dispatches straight-line basic blocks — with hot associative idioms
	// fused into superinstructions — in one shot whenever exactly one
	// hardware thread is active, falling back to the per-cycle path at
	// control flow, traps, and multithreaded phases. BlocksOff forces the
	// per-cycle path everywhere. Architecturally invisible: snapshots,
	// statistics, and cycle counts are bit-identical either way.
	Blocks BlocksMode
}

// BlocksMode selects the block-dispatch tier for Config.Blocks.
type BlocksMode = core.BlocksMode

// Block-dispatch modes for Config.Blocks.
const (
	// BlocksAuto engages block dispatch whenever it is provably exact.
	BlocksAuto = core.BlocksAuto
	// BlocksOff forces the per-cycle dispatch path (A/B baseline).
	BlocksOff = core.BlocksOff
)

// Engine selects the host-side execution strategy for parallel and
// reduction instructions; see the package comment.
type Engine = machine.Engine

// Host execution engines for Config.Engine.
const (
	// EngineAuto shards large arrays on multi-core hosts, else serial.
	EngineAuto = machine.EngineAuto
	// EngineSerial always executes the PE array on a single goroutine.
	EngineSerial = machine.EngineSerial
	// EngineParallel always shards the PE array over a worker pool.
	EngineParallel = machine.EngineParallel
)

// normalized resolves the zero-value defaults (the paper's prototype) so
// two configurations that build identical processors compare equal.
func (c Config) normalized() Config {
	if c.PEs == 0 {
		c.PEs = 16
	}
	if c.Threads == 0 {
		c.Threads = 16
	}
	if c.Width == 0 {
		c.Width = 8
	}
	if c.LocalMemWords == 0 {
		c.LocalMemWords = 1024
	}
	if c.Arity == 0 {
		c.Arity = 4
	}
	return c
}

// Key returns a canonical fingerprint of the configuration after default
// resolution: two Configs with equal Keys build architecturally identical
// processors. The serving pool (internal/pool) keys warm-machine reuse on
// it. Engine is included even though it is architecturally invisible, so a
// request that pins a host engine never receives a machine built with
// another.
func (c Config) Key() string {
	n := c.normalized()
	return fmt.Sprintf("pes=%d threads=%d width=%d lmem=%d arity=%d seqmul=%t fixed=%t smt=%t trace=%d engine=%s blocks=%s",
		n.PEs, n.Threads, n.Width, n.LocalMemWords, n.Arity,
		n.SeqMul, n.FixedPriority, n.SMT, n.TraceDepth, n.Engine, n.Blocks)
}

// Geometry is the memory geometry of the machine a Config builds, after
// default resolution: the sizes of the flat state files a Processor
// allocates. It lets callers admitting untrusted configurations (the
// serving daemon's footprint guard, dump clamping) reason about machine
// sizes without re-stating the simulator's defaults.
type Geometry struct {
	PEs            int // processing elements
	Threads        int // hardware thread contexts
	LocalMemWords  int // local memory words per PE
	ScalarMemWords int // control-unit data memory words
	// RegsPerPE is the register count each PE holds per thread: parallel
	// general-purpose plus flag registers.
	RegsPerPE int
	// FootprintWords is the total flat-state allocation in words: local
	// memories, per-thread register and flag files, scalar registers and
	// memory, and the reduction-tree leaf buffer.
	FootprintWords int64
}

// Geometry resolves the configuration's defaults and sizes its flat state
// files. The arithmetic is overflow-checked: an invalid configuration or
// one whose footprint overflows int64 words returns an error, so hostile
// dimensions can be rejected before any allocation is attempted.
func (c Config) Geometry() (Geometry, error) {
	mc := c.coreConfig().Machine
	if err := mc.Validate(); err != nil {
		return Geometry{}, err
	}
	g := Geometry{
		PEs:            mc.PEs,
		Threads:        mc.Threads,
		LocalMemWords:  mc.LocalMemWords,
		ScalarMemWords: mc.ScalarMemWords,
		RegsPerPE:      isa.NumParallelRegs + isa.NumFlagRegs,
	}
	ok := true
	local := mulWords(int64(g.PEs), int64(g.LocalMemWords), &ok)
	regs := mulWords(mulWords(int64(g.Threads), int64(g.PEs), &ok), int64(g.RegsPerPE), &ok)
	scalarRegs := mulWords(int64(g.Threads), isa.NumScalarRegs, &ok)
	total := addWords(local, regs, &ok)
	total = addWords(total, scalarRegs, &ok)
	total = addWords(total, int64(g.ScalarMemWords), &ok)
	total = addWords(total, int64(g.PEs), &ok) // reduction-tree leaf buffer
	if !ok {
		return Geometry{}, fmt.Errorf("asc: machine footprint overflows int64 words (PEs=%d Threads=%d LocalMemWords=%d)",
			g.PEs, g.Threads, g.LocalMemWords)
	}
	g.FootprintWords = total
	return g, nil
}

// mulWords and addWords are the overflow-checked arithmetic behind
// Geometry; inputs are non-negative (machine.Config.Validate enforces it).
func mulWords(a, b int64, ok *bool) int64 {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi != 0 || lo > math.MaxInt64 {
		*ok = false
		return 0
	}
	return int64(lo)
}

func addWords(a, b int64, ok *bool) int64 {
	if a > math.MaxInt64-b {
		*ok = false
		return 0
	}
	return a + b
}

func (c Config) coreConfig() core.Config {
	cc := core.Config{
		Machine: machine.Config{
			PEs:           c.PEs,
			Threads:       c.Threads,
			Width:         c.Width,
			LocalMemWords: c.LocalMemWords,
			Engine:        c.Engine,
		},
		Arity:      c.Arity,
		SeqMul:     c.SeqMul,
		SMT:        c.SMT,
		TraceDepth: c.TraceDepth,
		Blocks:     c.Blocks,
	}
	if c.FixedPriority {
		cc.Scheduler = core.SchedFixed
	}
	return cc
}

// Program is an assembled MTASC program, carrying both the raw
// instruction form and the validated decoded micro-op form (the decode
// plane). Decoding happens once here, at assembly time; every processor
// built from the Program shares the immutable decoded form.
type Program struct {
	prog *asm.Program
	dec  *isa.DecodedProgram
}

// ErrInvalidProgram is the sentinel wrapped by program-validation
// failures: undefined opcodes, register indices outside their file, or
// static branch/jump/spawn targets outside the program. Assemble,
// CompileASCL, New, and SetProgram reject such programs up front; test
// with errors.Is.
var ErrInvalidProgram = isa.ErrInvalidProgram

// Assemble translates MTASC assembly into a program and validates it
// (decode-plane checks; errors wrap ErrInvalidProgram). See internal/asm
// for the full syntax; assembly errors carry 1-based source line numbers.
func Assemble(src string) (*Program, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	dec, err := isa.DecodeProgram(p.Insts)
	if err != nil {
		return nil, err
	}
	return &Program{prog: p, dec: dec}, nil
}

// MustAssemble is Assemble that panics on error, for constant sources.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Listing renders a disassembly listing with labels and encodings.
func (p *Program) Listing() string { return asm.Disassemble(p.prog) }

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.prog.Insts) }

// Label returns the address of a label.
func (p *Program) Label(name string) (int, bool) {
	addr, ok := p.prog.Labels[name]
	return addr, ok
}

// Words returns the binary encoding of the program.
func (p *Program) Words() []uint32 { return append([]uint32(nil), p.prog.Words...) }

// BlocksBuilt reports whether the program's block-compiled form (the
// basic-block and superinstruction artifact the block-dispatch tier
// executes) has already been built. The build happens lazily on the
// first run with Config.Blocks enabled and is shared by every processor
// running the program; the serving tier reports this per result as
// blockCacheHit, the block-plane analogue of programCacheHit.
func (p *Program) BlocksBuilt() bool { return p.dec.BlocksBuilt() }

// Stats summarizes a simulation run.
type Stats struct {
	// Cycles is the total cycle count including pipeline drain.
	Cycles int64
	// Instructions issued, total and by pipeline path.
	Instructions int64
	Scalar       int64
	Parallel     int64
	Reduction    int64
	// IdleCycles is the number of issue slots no thread could fill;
	// IdleByCause attributes them ("reduction", "broadcast-reduction",
	// "data", "structural", "control", "sync", "fetch").
	IdleCycles  int64
	IdleByCause map[string]int64
	// StallByCause sums per-instruction wait cycles by hazard class.
	StallByCause map[string]int64
	// Contention counts ready-but-not-selected thread-cycles: more than one
	// thread was ready for the single issue slot (the multithreading
	// headroom the paper's scheduler exploits).
	Contention int64
	// Fetches and Flushes are front-end counters: instruction-buffer fills
	// and control-redirect discards.
	Fetches int64
	Flushes int64
	// BlockDispatches counts block-plane entries (each dispatching one or
	// more micro-ops in one shot); BlockFallbacks attributes declines back
	// to the per-cycle path ("multithread", "refill", "boundary",
	// "window"). Both zero when Config.Blocks is off.
	BlockDispatches int64
	BlockFallbacks  map[string]int64
	// PerThread[t] is the instruction count issued by hardware thread t.
	PerThread []int64
}

// ActiveThreads counts hardware threads that issued at least one
// instruction during the run.
func (s Stats) ActiveThreads() int {
	n := 0
	for _, c := range s.PerThread {
		if c > 0 {
			n++
		}
	}
	return n
}

// IPC is issued instructions per cycle: at most 1.0 for the single-issue
// machine, at most 2.0 with Config.SMT.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

func convertStats(cs core.Stats) Stats {
	s := Stats{
		Cycles:       cs.Cycles,
		Instructions: cs.Instructions,
		Scalar:       cs.Scalar,
		Parallel:     cs.Parallel,
		Reduction:    cs.Reduction,
		IdleCycles:   cs.IdleCycles,
		IdleByCause:  map[string]int64{},
		StallByCause: map[string]int64{},
		Contention:   cs.Contention,
		Fetches:      cs.Fetches,
		Flushes:      cs.Flushes,
		PerThread:    append([]int64(nil), cs.PerThread...),

		BlockDispatches: cs.BlockDispatches,
	}
	if len(cs.BlockFallbacks) > 0 {
		s.BlockFallbacks = make(map[string]int64, len(cs.BlockFallbacks))
		for k, v := range cs.BlockFallbacks {
			s.BlockFallbacks[k] = v
		}
	}
	for k, v := range cs.IdleByKind {
		s.IdleByCause[k.String()] = v
	}
	for k, v := range cs.StallByKind {
		s.StallByCause[k.String()] = v
	}
	return s
}

// ErrCycleLimit reports that Run or RunContext stopped at its cycle budget
// before the program halted; test with errors.Is to distinguish resource
// exhaustion from architectural traps.
var ErrCycleLimit = core.ErrCycleLimit

// ErrCheckpoint reports that RunContext stopped because RequestCheckpoint
// was called: the machine is at a quiescent point and Snapshot() captures a
// state that resumes bit-identically on any identically configured
// processor. The serving tier's live-migration path is built on this.
var ErrCheckpoint = core.ErrCheckpoint

// Processor is a simulated Multithreaded ASC Processor instance.
type Processor struct {
	cfg  Config
	prog *Program
	core *core.Processor
}

// New builds a processor running prog, reusing the program's decoded form
// (no per-construction decode).
func New(cfg Config, prog *Program) (*Processor, error) {
	c, err := core.NewDecoded(cfg.coreConfig(), prog.dec)
	if err != nil {
		return nil, err
	}
	p := &Processor{cfg: cfg, prog: prog, core: c}
	if err := p.loadDataSegment(); err != nil {
		return nil, err
	}
	return p, nil
}

// loadDataSegment initializes scalar memory from the program's .data image.
func (p *Processor) loadDataSegment() error {
	if len(p.prog.prog.Data) == 0 {
		return nil
	}
	img := make([]int64, len(p.prog.prog.Data))
	for i, w := range p.prog.prog.Data {
		img[i] = int64(w)
	}
	return p.LoadScalarMem(img)
}

// Config returns the configuration the processor was built with.
func (p *Processor) Config() Config { return p.cfg }

// Reset returns the processor to power-on state — all registers, flags,
// memories, thread contexts, pipeline state, and statistics — without
// reallocating the flat state files or restarting the host engine's worker
// pool, then reloads the program's data segment. A reset processor produces
// snapshots and results identical to a freshly built one; the serving pool
// uses it to recycle warm machines between requests.
func (p *Processor) Reset() error {
	p.core.Reset()
	return p.loadDataSegment()
}

// SetProgram swaps in a new program and Resets the processor. The machine
// configuration — and therefore every allocation — is unchanged, so a
// pooled processor serves a stream of different programs at zero
// construction cost.
func (p *Processor) SetProgram(prog *Program) error {
	p.core.SetDecoded(prog.dec)
	p.prog = prog
	return p.loadDataSegment()
}

// LoadLocalMem initializes PE local memories: data[pe][word].
func (p *Processor) LoadLocalMem(data [][]int64) error {
	return p.core.Machine().LoadLocalMem(data)
}

// LoadScalarMem initializes the control unit data memory from address 0.
func (p *Processor) LoadScalarMem(data []int64) error {
	return p.core.Machine().LoadScalarMem(data)
}

// Run simulates to completion, or for at most maxCycles (0 = unlimited).
func (p *Processor) Run(maxCycles int64) (Stats, error) {
	cs, err := p.core.Run(maxCycles)
	return convertStats(cs), err
}

// RunContext is Run with cooperative cancellation: the simulation polls ctx
// every few thousand cycles and stops with ctx's error once it is done,
// returning the statistics accumulated so far. This is how the serving
// daemon enforces per-request wall-clock limits.
func (p *Processor) RunContext(ctx context.Context, maxCycles int64) (Stats, error) {
	cs, err := p.core.RunContext(ctx, maxCycles)
	return convertStats(cs), err
}

// Step advances one clock cycle; it reports false once the machine halted
// and the pipeline drained.
func (p *Processor) Step() (bool, error) { return p.core.Step() }

// Cycle returns the current simulation cycle — the resume point a
// checkpoint taken now will continue from.
func (p *Processor) Cycle() int64 { return p.core.Cycle() }

// RequestCheckpoint asks an in-flight RunContext to suspend at the next
// poll-window boundary with ErrCheckpoint, leaving the machine quiescent
// for Snapshot. Safe to call from any goroutine. A request with no run in
// flight applies to the next RunContext; Reset clears it. Runs shorter
// than the poll window (a few thousand cycles) complete instead.
func (p *Processor) RequestCheckpoint() { p.core.RequestCheckpoint() }

// Scalar reads scalar register r of hardware thread t.
func (p *Processor) Scalar(t int, r int) int64 {
	return p.core.Machine().Scalar(t, uint8(r))
}

// Parallel reads parallel register r of PE pe in thread t.
func (p *Processor) Parallel(t, pe, r int) int64 {
	return p.core.Machine().Parallel(t, pe, uint8(r))
}

// Flag reads flag register r of PE pe in thread t.
func (p *Processor) Flag(t, pe, r int) bool {
	return p.core.Machine().Flag(t, pe, uint8(r))
}

// ScalarMem reads word w of the control unit data memory.
func (p *Processor) ScalarMem(w int) int64 { return p.core.Machine().ScalarMem(w) }

// LocalMem reads word w of PE pe's local memory.
func (p *Processor) LocalMem(pe, w int) int64 { return p.core.Machine().LocalMem(pe, w) }

// Debug runs an interactive debugger REPL on the processor (step,
// breakpoints, register/memory inspection, pipeline diagrams). Commands
// are read from in and responses written to out; build the processor with
// TraceDepth != 0 for diagrams and breakpoints.
func (p *Processor) Debug(in io.Reader, out io.Writer) error {
	return debug.New(p.core, in, out).Run()
}

// Snapshot serializes the complete architectural state (registers, flags,
// memories, thread contexts) for checkpointing. Restore it into a processor
// built with the same Config and Program. Snapshots capture architectural
// state between instructions; pipeline state rebuilds on resume.
func (p *Processor) Snapshot() []byte { return p.core.Snapshot() }

// Restore loads a Snapshot taken from an identically configured processor.
func (p *Processor) Restore(data []byte) error { return p.core.Restore(data) }

// NetworkLatencies returns the derived broadcast (b) and reduction (r)
// pipeline depths.
func (p *Processor) NetworkLatencies() (b, r int) { return p.core.NetworkLatencies() }

// PipelineDiagram renders the Figure-2-style stage diagram of the traced
// instructions (requires Config.TraceDepth != 0).
func (p *Processor) PipelineDiagram() string {
	return trace.Diagram(p.core.Params(), p.core.Trace())
}

// VCD renders the traced run as a Value Change Dump waveform (viewable in
// GTKWave); requires Config.TraceDepth != 0.
func (p *Processor) VCD() string {
	return trace.VCD(p.core.Params(), p.core.Trace())
}

// PipelineGraph renders the Figure-1-style pipeline organization.
func (p *Processor) PipelineGraph() string { return p.core.Params().StageGraph() }

// Describe summarizes the configuration (PEs, threads, network shape).
func (p *Processor) Describe() string {
	return p.core.Describe() + p.core.FrontEnd().Describe()
}

// FormatStats renders a human-readable run summary with the idle and
// stall breakdowns by hazard cause and the front-end counters.
func FormatStats(s Stats) string {
	var out string
	out += fmt.Sprintf("cycles: %d  instructions: %d  IPC: %.3f\n", s.Cycles, s.Instructions, s.IPC())
	out += fmt.Sprintf("by path: scalar %d, parallel %d, reduction %d\n", s.Scalar, s.Parallel, s.Reduction)
	out += fmt.Sprintf("idle cycles: %d %v\n", s.IdleCycles, s.IdleByCause)
	if len(s.StallByCause) > 0 {
		var stalls int64
		for _, v := range s.StallByCause {
			stalls += v
		}
		out += fmt.Sprintf("instruction stalls: %d %v\n", stalls, s.StallByCause)
	}
	out += fmt.Sprintf("fetches: %d, flushed: %d, ready-contention: %d\n", s.Fetches, s.Flushes, s.Contention)
	if len(s.PerThread) > 0 {
		out += fmt.Sprintf("threads used: %d of %d\n", s.ActiveThreads(), len(s.PerThread))
	}
	return out
}

// Baselines.

// BaselineResult reports a baseline machine run.
type BaselineResult struct {
	Cycles       int64
	Instructions int64
	Switches     int64 // coarse-grain thread switches
}

// IPC is instructions per cycle.
func (r BaselineResult) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// NonPipelined simulates prog on the non-pipelined ASC processor baseline
// (the 2002/2003 prototypes: CPI 1 but bit-serial max/min and a clock that
// must cover full network propagation) and returns its cycle counts along
// with the finished machine state reader.
type NonPipelined struct {
	b *baseline.NonPipelined
}

// NewNonPipelined builds the non-pipelined baseline.
func NewNonPipelined(cfg Config, prog *Program) (*NonPipelined, error) {
	b, err := baseline.NewNonPipelined(machine.Config{
		PEs: cfg.PEs, Threads: 1, Width: cfg.Width, LocalMemWords: cfg.LocalMemWords,
		Engine: cfg.Engine,
	}, prog.prog.Insts)
	if err != nil {
		return nil, err
	}
	return &NonPipelined{b: b}, nil
}

// LoadLocalMem initializes PE local memories.
func (n *NonPipelined) LoadLocalMem(data [][]int64) error { return n.b.Machine().LoadLocalMem(data) }

// LoadScalarMem initializes the data memory.
func (n *NonPipelined) LoadScalarMem(data []int64) error { return n.b.Machine().LoadScalarMem(data) }

// Run executes to completion.
func (n *NonPipelined) Run(maxCycles int64) (BaselineResult, error) {
	r, err := n.b.Run(maxCycles)
	return BaselineResult{Cycles: r.Cycles, Instructions: r.Instructions}, err
}

// ScalarMem reads the finished data memory.
func (n *NonPipelined) ScalarMem(w int) int64 { return n.b.Machine().ScalarMem(w) }

// CoarseGrain simulates prog on the coarse-grain multithreaded baseline
// (switch-on-long-stall with a flush penalty, section 5).
type CoarseGrain struct {
	b *baseline.CoarseGrain
}

// NewCoarseGrain builds the coarse-grain baseline.
func NewCoarseGrain(cfg Config, prog *Program) (*CoarseGrain, error) {
	arity := cfg.Arity
	b, err := baseline.NewCoarseGrain(machine.Config{
		PEs: cfg.PEs, Threads: cfg.Threads, Width: cfg.Width, LocalMemWords: cfg.LocalMemWords,
		Engine: cfg.Engine,
	}, arity, prog.prog.Insts)
	if err != nil {
		return nil, err
	}
	return &CoarseGrain{b: b}, nil
}

// LoadLocalMem initializes PE local memories.
func (c *CoarseGrain) LoadLocalMem(data [][]int64) error { return c.b.Machine().LoadLocalMem(data) }

// LoadScalarMem initializes the data memory.
func (c *CoarseGrain) LoadScalarMem(data []int64) error { return c.b.Machine().LoadScalarMem(data) }

// Run executes to completion.
func (c *CoarseGrain) Run(maxCycles int64) (BaselineResult, error) {
	r, err := c.b.Run(maxCycles)
	return BaselineResult{Cycles: r.Cycles, Instructions: r.Instructions, Switches: r.Switches}, err
}

// ScalarMem reads the finished data memory.
func (c *CoarseGrain) ScalarMem(w int) int64 { return c.b.Machine().ScalarMem(w) }

// FPGA resource and clock model (Table 1 of the paper).

// ResourceReport is the Table-1 style breakdown in Cyclone II terms.
type ResourceReport struct {
	ControlUnitLEs, ControlUnitRAMs int
	PEArrayLEs, PEArrayRAMs         int
	NetworkLEs, NetworkRAMs         int
	TotalLEs, TotalRAMs             int
}

func (r ResourceReport) String() string {
	return fpga.Report{
		ControlUnit: fpga.Usage{LEs: r.ControlUnitLEs, RAMs: r.ControlUnitRAMs},
		PEArray:     fpga.Usage{LEs: r.PEArrayLEs, RAMs: r.PEArrayRAMs},
		Network:     fpga.Usage{LEs: r.NetworkLEs, RAMs: r.NetworkRAMs},
		Total:       fpga.Usage{LEs: r.TotalLEs, RAMs: r.TotalRAMs},
	}.String()
}

func archOf(cfg Config) fpga.Arch {
	return fpga.Arch{
		PEs:           cfg.PEs,
		Threads:       cfg.Threads,
		Width:         cfg.Width,
		LocalMemWords: cfg.LocalMemWords,
		Arity:         cfg.Arity,
	}
}

// EstimateResources sizes the configuration with the calibrated FPGA model.
func EstimateResources(cfg Config) ResourceReport {
	r := fpga.Estimate(archOf(cfg))
	return ResourceReport{
		ControlUnitLEs: r.ControlUnit.LEs, ControlUnitRAMs: r.ControlUnit.RAMs,
		PEArrayLEs: r.PEArray.LEs, PEArrayRAMs: r.PEArray.RAMs,
		NetworkLEs: r.Network.LEs, NetworkRAMs: r.Network.RAMs,
		TotalLEs: r.Total.LEs, TotalRAMs: r.Total.RAMs,
	}
}

// MaxPEsOnDevice returns how many PEs of this configuration fit a named
// Cyclone II device (e.g. "EP2C35"), and which resource binds.
func MaxPEsOnDevice(cfg Config, device string) (int, string, error) {
	d, ok := fpga.DeviceByName(device)
	if !ok {
		return 0, "", fmt.Errorf("asc: unknown device %q", device)
	}
	n, binding := fpga.MaxPEs(archOf(cfg), d)
	return n, binding, nil
}

// PipelinedClockMHz is the modeled clock of the pipelined design.
func PipelinedClockMHz(cfg Config) float64 {
	a := archOf(cfg)
	if a.Width == 0 {
		a.Width = 8
	}
	return fpga.PipelinedClockMHz(a.Width)
}

// NonPipelinedClockMHz is the modeled clock of the non-pipelined baseline,
// which degrades as the PE count grows.
func NonPipelinedClockMHz(cfg Config) float64 {
	a := archOf(cfg)
	if a.Width == 0 {
		a.Width = 8
	}
	if a.PEs == 0 {
		a.PEs = 16
	}
	return fpga.NonPipelinedClockMHz(a.PEs, a.Width)
}

// WallTimeMs converts cycles at a clock rate to milliseconds.
func WallTimeMs(cycles int64, clockMHz float64) float64 {
	return fpga.WallTimeMs(cycles, clockMHz)
}
