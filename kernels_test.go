package asc

import "testing"

func TestKernelNames(t *testing.T) {
	names := KernelNames()
	if len(names) < 10 {
		t.Fatalf("only %d kernels", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate kernel %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"max-search", "mst-prim", "priority-queue"} {
		if !seen[want] {
			t.Errorf("missing kernel %q", want)
		}
	}
}

func TestRunKernel(t *testing.T) {
	r, err := RunKernel("max-search", 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Reductions == 0 {
		t.Errorf("result = %+v", r)
	}
	if _, err := RunKernel("nope", 16, 3); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestRunKernelSuite(t *testing.T) {
	results, err := RunKernelSuite(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(KernelNames()) {
		t.Errorf("got %d results", len(results))
	}
}
