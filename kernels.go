package asc

import (
	"fmt"

	"repro/internal/progs"
)

// KernelResult reports one reference-kernel run: the kernel is executed on
// the simulator and its outputs verified against a pure Go oracle.
type KernelResult struct {
	Name         string
	Cycles       int64
	Instructions int64
	Reductions   int64
	IPC          float64
}

// KernelNames lists the built-in associative reference kernels: the classic
// ASC-model workloads (searches, responder iteration, MST, track
// correlation, associative sort, priority queue, ...) each packaged with
// deterministic data and a correctness oracle.
func KernelNames() []string {
	var names []string
	for _, ins := range progs.Suite(16, 0) {
		names = append(names, ins.Name)
	}
	return names
}

// RunKernel executes one named reference kernel at the given PE count on
// the fine-grain multithreaded core and verifies its result against the
// Go oracle; seed selects the workload instance.
func RunKernel(name string, pes int, seed int64) (KernelResult, error) {
	for _, ins := range progs.Suite(pes, seed) {
		if ins.Name != name {
			continue
		}
		stats, err := ins.RunCore(pes, 1, 4)
		if err != nil {
			return KernelResult{}, err
		}
		return KernelResult{
			Name:         ins.Name,
			Cycles:       stats.Cycles,
			Instructions: stats.Instructions,
			Reductions:   stats.Reduction,
			IPC:          stats.IPC(),
		}, nil
	}
	return KernelResult{}, fmt.Errorf("asc: unknown kernel %q (see KernelNames)", name)
}

// RunKernelSuite runs every reference kernel and returns the results; any
// oracle failure aborts with an error.
func RunKernelSuite(pes int, seed int64) ([]KernelResult, error) {
	var out []KernelResult
	for _, name := range KernelNames() {
		r, err := RunKernel(name, pes, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
