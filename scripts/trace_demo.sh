#!/usr/bin/env sh
# trace_demo.sh — boot a tiny loopback fleet (two ascd, one ascgw), run a
# traced batch through the gateway, and pretty-print the stitched
# fleet-wide waterfall with asctrace. Run via `make trace-demo`.
# Requires: go, curl.
set -eu

GW_PORT=18671
B1_PORT=18681
B2_PORT=18682
WORKDIR="$(mktemp -d)"
PIDS=""

cleanup() {
	for p in $PIDS; do kill "$p" 2>/dev/null || true; done
	rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

say() { echo "trace-demo: $*"; }
fail() { echo "trace-demo: FAIL: $*" >&2; exit 1; }

say "building ascd, ascgw, asctrace"
go build -o "$WORKDIR/ascd" ./cmd/ascd
go build -o "$WORKDIR/ascgw" ./cmd/ascgw
go build -o "$WORKDIR/asctrace" ./cmd/asctrace

"$WORKDIR/ascd" -addr 127.0.0.1:$B1_PORT -trace-sample 1 -log-level warn &
PIDS="$PIDS $!"
"$WORKDIR/ascd" -addr 127.0.0.1:$B2_PORT -trace-sample 1 -log-level warn &
PIDS="$PIDS $!"
"$WORKDIR/ascgw" -addr 127.0.0.1:$GW_PORT \
	-backends http://127.0.0.1:$B1_PORT,http://127.0.0.1:$B2_PORT \
	-trace-sample 1 -log-level warn &
PIDS="$PIDS $!"

wait_healthy() {
	i=0
	until curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && fail "port $1 not healthy after 10s"
		sleep 0.1
	done
}
wait_healthy $B1_PORT
wait_healthy $B2_PORT
wait_healthy $GW_PORT

# Two digest groups (pes=4 ganged pair + a pes=8 single) so the waterfall
# shows chunk routing, gang grouping, and execution on real backends.
TRACE_ID=$(od -An -N16 -tx1 /dev/urandom | tr -d ' \n')
BATCH_BODY='{"jobs": [
  {"ascl": "parallel v = pread(0); write(0, sumval(v));", "config": {"pes": 4, "width": 32}, "localMem": [[1],[2],[3],[4]], "dumpScalar": 1},
  {"ascl": "parallel v = pread(0); write(0, sumval(v));", "config": {"pes": 4, "width": 32}, "localMem": [[2],[2],[3],[3]], "dumpScalar": 1},
  {"ascl": "parallel v = pread(0); write(0, sumval(v));", "config": {"pes": 8, "width": 32}, "localMem": [[1],[1],[1],[1],[1],[1],[1],[2]], "dumpScalar": 1}
]}'

say "running one traced batch (trace $TRACE_ID)"
code=$(curl -s -o "$WORKDIR/resp" -w '%{http_code}' --max-time 20 \
	-H "traceparent: 00-$TRACE_ID-00f067aa0ba902b7-01" \
	"http://127.0.0.1:$GW_PORT/v1/batch" -d "$BATCH_BODY") || fail "transport error"
[ "$code" = 200 ] || fail "batch status $code: $(cat "$WORKDIR/resp")"

echo
"$WORKDIR/asctrace" -trace "$TRACE_ID" "http://127.0.0.1:$GW_PORT/debug/traces"
echo
say "the same id is in the histograms: look for trace_id=\"$TRACE_ID\" exemplars"
curl -s "http://127.0.0.1:$GW_PORT/metrics" | grep -m 3 "trace_id=\"$TRACE_ID\"" || true
