#!/usr/bin/env sh
# fleet_smoke.sh — end-to-end smoke of the distributed serving tier on
# loopback: boot two ascd backends and one ascgw in front, run one traced
# batch and assert its stitched trace carries spans from both tiers, drive
# mixed /v1/run and /v1/batch traffic through the gateway, kill one
# backend mid-stream, and assert that (a) every response is a success or an
# honest shed (429/503 with Retry-After) — never a transport error or a
# hang — and (b) results stay correct throughout. A final phase boots a
# fresh two-backend fleet, drains one backend under live resumable
# sessions, and asserts every session completes through its ring successor
# with a state digest identical to an uninterrupted run (live migration,
# docs/SERVER.md §drain). Run via `make fleet-smoke`. Requires: go, curl.
# Exits non-zero on any violation.
set -eu

GW_PORT=18641
B1_PORT=18651
B2_PORT=18652
WORKDIR="$(mktemp -d)"
PIDS=""

cleanup() {
	for p in $PIDS; do kill "$p" 2>/dev/null || true; done
	rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

say() { echo "fleet-smoke: $*"; }
fail() { echo "fleet-smoke: FAIL: $*" >&2; exit 1; }

say "building ascd and ascgw"
go build -o "$WORKDIR/ascd" ./cmd/ascd
go build -o "$WORKDIR/ascgw" ./cmd/ascgw

"$WORKDIR/ascd" -addr 127.0.0.1:$B1_PORT -trace-sample 1 -log-level warn &
B1_PID=$!; PIDS="$PIDS $B1_PID"
"$WORKDIR/ascd" -addr 127.0.0.1:$B2_PORT -trace-sample 1 -log-level warn &
B2_PID=$!; PIDS="$PIDS $B2_PID"
# Short health interval so the killed backend ejects within the test.
# Full trace sampling on every tier so the traced-batch phase can fetch
# its stitched trace deterministically.
"$WORKDIR/ascgw" -addr 127.0.0.1:$GW_PORT \
	-backends http://127.0.0.1:$B1_PORT,http://127.0.0.1:$B2_PORT \
	-health-interval 200ms -health-failures 2 -trace-sample 1 -log-level warn &
GW_PID=$!; PIDS="$PIDS $GW_PID"

wait_healthy() {
	i=0
	until curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && fail "port $1 not healthy after 10s"
		sleep 0.1
	done
}
wait_healthy $B1_PORT
wait_healthy $B2_PORT
wait_healthy $GW_PORT
say "gateway and both backends healthy"

RUN_BODY='{"ascl": "parallel v = pread(0); write(0, sumval(v));", "config": {"pes": 4, "width": 32}, "localMem": [[1],[2],[3],[4]], "dumpScalar": 1}'
# Same program twice and a second geometry: two digest groups, gangable.
BATCH_BODY='{"jobs": [
  {"ascl": "parallel v = pread(0); write(0, sumval(v));", "config": {"pes": 4, "width": 32}, "localMem": [[1],[2],[3],[4]], "dumpScalar": 1},
  {"ascl": "parallel v = pread(0); write(0, sumval(v));", "config": {"pes": 4, "width": 32}, "localMem": [[2],[2],[3],[3]], "dumpScalar": 1},
  {"ascl": "parallel v = pread(0); write(0, sumval(v));", "config": {"pes": 8, "width": 32}, "localMem": [[1],[1],[1],[1],[1],[1],[1],[2]], "dumpScalar": 1}
]}'

# one_run/one_batch: POST through the gateway, tolerate honest sheds
# (429/503), fail hard on transport errors, other statuses, or wrong
# results. A 20s curl cap turns a hung request into a failure.
one_run() {
	code=$(curl -s -o "$WORKDIR/resp" -w '%{http_code}' --max-time 20 \
		"http://127.0.0.1:$GW_PORT/v1/run" -d "$RUN_BODY") || fail "run: transport error through gateway"
	case "$code" in
	200) grep -q '"scalarMem":\[10\]' "$WORKDIR/resp" || fail "run: wrong result: $(cat "$WORKDIR/resp")" ;;
	429 | 503) SHEDS=$((SHEDS + 1)) ;;
	*) fail "run: unexpected status $code: $(cat "$WORKDIR/resp")" ;;
	esac
}
one_batch() {
	code=$(curl -s -o "$WORKDIR/resp" -w '%{http_code}' --max-time 20 \
		"http://127.0.0.1:$GW_PORT/v1/batch" -d "$BATCH_BODY") || fail "batch: transport error through gateway"
	case "$code" in
	200)
		# Per-job sheds inside a 200 are honest too; completed jobs must
		# be correct (sums 10, 10, 9).
		if grep -q '"failed":0' "$WORKDIR/resp"; then
			grep -q '"scalarMem":\[9\]' "$WORKDIR/resp" || fail "batch: wrong results: $(cat "$WORKDIR/resp")"
		else
			grep -q '"status":50[03]\|"status":429' "$WORKDIR/resp" || fail "batch: non-shed job failure: $(cat "$WORKDIR/resp")"
			SHEDS=$((SHEDS + 1))
		fi
		;;
	429 | 503) SHEDS=$((SHEDS + 1)) ;;
	*) fail "batch: unexpected status $code: $(cat "$WORKDIR/resp")" ;;
	esac
}

say "phase 0: one traced batch, stitched across both tiers"
TRACE_ID=4bf92f3577b34da6a3ce929d0e0e4736
code=$(curl -s -o "$WORKDIR/tresp" -w '%{http_code}' --max-time 20 \
	-H "traceparent: 00-$TRACE_ID-00f067aa0ba902b7-01" \
	"http://127.0.0.1:$GW_PORT/v1/batch" -d "$BATCH_BODY") || fail "traced batch: transport error"
[ "$code" = 200 ] || fail "traced batch: status $code: $(cat "$WORKDIR/tresp")"
curl -s --max-time 20 "http://127.0.0.1:$GW_PORT/debug/traces?trace=$TRACE_ID" >"$WORKDIR/trace"
grep -q "\"traceId\":\"$TRACE_ID\"" "$WORKDIR/trace" || fail "stitched trace $TRACE_ID not retrievable from the gateway"
grep -q '"service":"ascgw"' "$WORKDIR/trace" || fail "stitched trace has no gateway spans"
grep -q '"service":"ascd"' "$WORKDIR/trace" || fail "stitched trace has no backend spans"
grep -q '"name":"route"' "$WORKDIR/trace" || fail "stitched trace missing route span"
grep -q '"name":"exec"' "$WORKDIR/trace" || fail "stitched trace missing exec span"
curl -s --max-time 20 "http://127.0.0.1:$GW_PORT/debug/traces?trace=$TRACE_ID&format=waterfall" | sed 's/^/fleet-smoke:   /'
say "stitched trace OK (spans from both tiers under one id)"

SHEDS=0
say "phase 1: mixed traffic through the healthy fleet"
i=0
while [ "$i" -lt 10 ]; do
	one_run
	one_batch
	i=$((i + 1))
done
[ "$SHEDS" -eq 0 ] || fail "healthy fleet shed $SHEDS requests"

say "phase 2: killing backend 1 mid-stream"
kill -9 "$B1_PID" 2>/dev/null || true
i=0
while [ "$i" -lt 15 ]; do
	one_run
	one_batch
	i=$((i + 1))
done
say "phase 2 done ($SHEDS sheds, all other responses correct)"

# The killed backend must be ejected from the fleet scrape's up gauge.
i=0
until curl -s "http://127.0.0.1:$GW_PORT/metrics" | grep -q "asc_gw_backend_up{backend=\"127.0.0.1:$B1_PORT\"} 0"; do
	i=$((i + 1))
	[ "$i" -gt 50 ] && fail "backend 1 never ejected from asc_gw_backend_up"
	sleep 0.1
done
say "backend 1 ejected"

say "phase 3: traffic settles on the survivor"
SETTLED=0
i=0
while [ "$i" -lt 10 ]; do
	before=$SHEDS
	one_run
	[ "$SHEDS" -eq "$before" ] && SETTLED=$((SETTLED + 1))
	i=$((i + 1))
done
[ "$SETTLED" -ge 8 ] || fail "only $SETTLED/10 runs succeeded after ejection settled"

# Fleet scrape must still be well-formed and carry both tiers' series.
curl -s "http://127.0.0.1:$GW_PORT/metrics" >"$WORKDIR/scrape"
grep -q '^asc_gw_requests_total' "$WORKDIR/scrape" || fail "scrape missing gateway series"
grep -q 'asc_requests_total{backend=' "$WORKDIR/scrape" || fail "scrape missing backend-labeled series"
curl -s "http://127.0.0.1:$GW_PORT/metrics?view=fleet" | grep -q '^asc_requests_total ' || fail "fleet view missing summed series"

say "phase 4: live migration — drain a backend under resumable sessions"
# Fresh mini-fleet: the main fleet already lost a backend to phase 2, and
# a drained backend stays out of rotation, so migration gets its own pair.
MGW_PORT=18645
M1_PORT=18655
M2_PORT=18656
"$WORKDIR/ascd" -addr 127.0.0.1:$M1_PORT -log-level warn &
PIDS="$PIDS $!"
"$WORKDIR/ascd" -addr 127.0.0.1:$M2_PORT -log-level warn &
PIDS="$PIDS $!"
"$WORKDIR/ascgw" -addr 127.0.0.1:$MGW_PORT \
	-backends http://127.0.0.1:$M1_PORT,http://127.0.0.1:$M2_PORT \
	-health-interval 200ms -health-failures 2 -log-level warn &
PIDS="$PIDS $!"
wait_healthy $M1_PORT
wait_healthy $M2_PORT
wait_healthy $MGW_PORT

# A resumable session long enough (~15 cycles/iteration) that the drain
# reliably lands mid-run. Distinct iteration counts give the two live
# sessions distinct program digests, so they route independently.
session_body() {
	printf '{"ascl": "scalar n = %d; scalar acc = 0; parallel v = idx(); while (n > 0) { acc = acc + sumval(v); n = n - 1; } write(0, acc);", "config": {"pes": 8, "width": 32}, "dumpScalar": 1, "resumable": true}' "$1"
}
state_digest() { sed -n 's/.*"stateDigest":"\([0-9a-f]\{64\}\)".*/\1/p' "$1"; }

ITERS_A=600000
ITERS_B=600001
# Uninterrupted references first: the migrated runs must reproduce these
# final state digests bit for bit.
for it in $ITERS_A $ITERS_B; do
	code=$(curl -s -o "$WORKDIR/ref$it" -w '%{http_code}' --max-time 60 \
		"http://127.0.0.1:$MGW_PORT/v1/sessions" -d "$(session_body $it)") || fail "migration: reference session transport error"
	[ "$code" = 200 ] || fail "migration: reference session status $code: $(cat "$WORKDIR/ref$it")"
	grep -q "\"scalarMem\":\[$((it * 28))\]" "$WORKDIR/ref$it" || fail "migration: reference result wrong: $(cat "$WORKDIR/ref$it")"
	[ -n "$(state_digest "$WORKDIR/ref$it")" ] || fail "migration: reference session has no stateDigest"
done

# Live phase: both sessions in flight, then drain whichever backend is
# actually executing one.
curl -s -o "$WORKDIR/liveA" -w '%{http_code}' --max-time 60 \
	"http://127.0.0.1:$MGW_PORT/v1/sessions" -d "$(session_body $ITERS_A)" >"$WORKDIR/liveA.code" &
LIVE_A=$!
curl -s -o "$WORKDIR/liveB" -w '%{http_code}' --max-time 60 \
	"http://127.0.0.1:$MGW_PORT/v1/sessions" -d "$(session_body $ITERS_B)" >"$WORKDIR/liveB.code" &
LIVE_B=$!

VICTIM=""
i=0
while [ -z "$VICTIM" ]; do
	for port in $M1_PORT $M2_PORT; do
		if curl -s --max-time 5 "http://127.0.0.1:$port/v1/sessions" | grep -q '"state":"running"'; then
			VICTIM="http://127.0.0.1:$port"
			break
		fi
	done
	i=$((i + 1))
	[ "$i" -gt 200 ] && fail "migration: no backend ever reported a running session"
	sleep 0.05
done
say "draining $VICTIM mid-session"
code=$(curl -s -o "$WORKDIR/drain" -w '%{http_code}' --max-time 30 \
	"http://127.0.0.1:$MGW_PORT/v1/admin/drain" -d "{\"backend\": \"$VICTIM\"}") || fail "migration: drain transport error"
[ "$code" = 200 ] || fail "migration: drain status $code: $(cat "$WORKDIR/drain")"
grep -q '"drained":true' "$WORKDIR/drain" || fail "migration: backend not drained: $(cat "$WORKDIR/drain")"
grep -q '"failed":0' "$WORKDIR/drain" || fail "migration: drain walk failed sessions: $(cat "$WORKDIR/drain")"

wait "$LIVE_A" || fail "migration: session A transport error"
wait "$LIVE_B" || fail "migration: session B transport error"
for v in A B; do
	it=$ITERS_A
	[ "$v" = B ] && it=$ITERS_B
	code=$(cat "$WORKDIR/live$v.code")
	[ "$code" = 200 ] || fail "migration: session $v status $code across the drain: $(cat "$WORKDIR/live$v")"
	grep -q '"state":"completed"' "$WORKDIR/live$v" || fail "migration: session $v did not complete: $(cat "$WORKDIR/live$v")"
	grep -q "\"scalarMem\":\[$((it * 28))\]" "$WORKDIR/live$v" || fail "migration: session $v wrong result: $(cat "$WORKDIR/live$v")"
	[ "$(state_digest "$WORKDIR/live$v")" = "$(state_digest "$WORKDIR/ref$it")" ] || \
		fail "migration: session $v state digest differs from uninterrupted run"
done
say "both sessions completed across the drain, state digests bit-identical"

# The gateway accounted for at least one live migration.
curl -s "http://127.0.0.1:$MGW_PORT/metrics" >"$WORKDIR/mscrape"
grep '^asc_migrations_total{' "$WORKDIR/mscrape" | grep -qv ' 0$' || \
	fail "migration: asc_migrations_total never moved: $(grep asc_migrations_total "$WORKDIR/mscrape" || true)"
grep -q 'asc_migration_duration_seconds_count' "$WORKDIR/mscrape" || fail "migration: duration histogram not exported"

# The drained backend is out of rotation; new sessions land on the
# survivor and still complete.
code=$(curl -s -o "$WORKDIR/post" -w '%{http_code}' --max-time 60 \
	"http://127.0.0.1:$MGW_PORT/v1/sessions" -d "$(session_body 1000)") || fail "migration: post-drain session transport error"
[ "$code" = 200 ] || fail "migration: post-drain session status $code"
grep -q "\"scalarMem\":\[$((1000 * 28))\]" "$WORKDIR/post" || fail "migration: post-drain session wrong result"
say "post-drain sessions complete on the survivor"

say "OK (0 transport errors, $SHEDS honest sheds across the kill window, migration digests bit-identical)"
