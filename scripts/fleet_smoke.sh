#!/usr/bin/env sh
# fleet_smoke.sh — end-to-end smoke of the distributed serving tier on
# loopback: boot two ascd backends and one ascgw in front, run one traced
# batch and assert its stitched trace carries spans from both tiers, drive
# mixed /v1/run and /v1/batch traffic through the gateway, kill one
# backend mid-stream, and assert that (a) every response is a success or an
# honest shed (429/503 with Retry-After) — never a transport error or a
# hang — and (b) results stay correct throughout. Run via `make
# fleet-smoke`. Requires: go, curl. Exits non-zero on any violation.
set -eu

GW_PORT=18641
B1_PORT=18651
B2_PORT=18652
WORKDIR="$(mktemp -d)"
PIDS=""

cleanup() {
	for p in $PIDS; do kill "$p" 2>/dev/null || true; done
	rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

say() { echo "fleet-smoke: $*"; }
fail() { echo "fleet-smoke: FAIL: $*" >&2; exit 1; }

say "building ascd and ascgw"
go build -o "$WORKDIR/ascd" ./cmd/ascd
go build -o "$WORKDIR/ascgw" ./cmd/ascgw

"$WORKDIR/ascd" -addr 127.0.0.1:$B1_PORT -trace-sample 1 -log-level warn &
B1_PID=$!; PIDS="$PIDS $B1_PID"
"$WORKDIR/ascd" -addr 127.0.0.1:$B2_PORT -trace-sample 1 -log-level warn &
B2_PID=$!; PIDS="$PIDS $B2_PID"
# Short health interval so the killed backend ejects within the test.
# Full trace sampling on every tier so the traced-batch phase can fetch
# its stitched trace deterministically.
"$WORKDIR/ascgw" -addr 127.0.0.1:$GW_PORT \
	-backends http://127.0.0.1:$B1_PORT,http://127.0.0.1:$B2_PORT \
	-health-interval 200ms -health-failures 2 -trace-sample 1 -log-level warn &
GW_PID=$!; PIDS="$PIDS $GW_PID"

wait_healthy() {
	i=0
	until curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && fail "port $1 not healthy after 10s"
		sleep 0.1
	done
}
wait_healthy $B1_PORT
wait_healthy $B2_PORT
wait_healthy $GW_PORT
say "gateway and both backends healthy"

RUN_BODY='{"ascl": "parallel v = pread(0); write(0, sumval(v));", "config": {"pes": 4, "width": 32}, "localMem": [[1],[2],[3],[4]], "dumpScalar": 1}'
# Same program twice and a second geometry: two digest groups, gangable.
BATCH_BODY='{"jobs": [
  {"ascl": "parallel v = pread(0); write(0, sumval(v));", "config": {"pes": 4, "width": 32}, "localMem": [[1],[2],[3],[4]], "dumpScalar": 1},
  {"ascl": "parallel v = pread(0); write(0, sumval(v));", "config": {"pes": 4, "width": 32}, "localMem": [[2],[2],[3],[3]], "dumpScalar": 1},
  {"ascl": "parallel v = pread(0); write(0, sumval(v));", "config": {"pes": 8, "width": 32}, "localMem": [[1],[1],[1],[1],[1],[1],[1],[2]], "dumpScalar": 1}
]}'

# one_run/one_batch: POST through the gateway, tolerate honest sheds
# (429/503), fail hard on transport errors, other statuses, or wrong
# results. A 20s curl cap turns a hung request into a failure.
one_run() {
	code=$(curl -s -o "$WORKDIR/resp" -w '%{http_code}' --max-time 20 \
		"http://127.0.0.1:$GW_PORT/v1/run" -d "$RUN_BODY") || fail "run: transport error through gateway"
	case "$code" in
	200) grep -q '"scalarMem":\[10\]' "$WORKDIR/resp" || fail "run: wrong result: $(cat "$WORKDIR/resp")" ;;
	429 | 503) SHEDS=$((SHEDS + 1)) ;;
	*) fail "run: unexpected status $code: $(cat "$WORKDIR/resp")" ;;
	esac
}
one_batch() {
	code=$(curl -s -o "$WORKDIR/resp" -w '%{http_code}' --max-time 20 \
		"http://127.0.0.1:$GW_PORT/v1/batch" -d "$BATCH_BODY") || fail "batch: transport error through gateway"
	case "$code" in
	200)
		# Per-job sheds inside a 200 are honest too; completed jobs must
		# be correct (sums 10, 10, 9).
		if grep -q '"failed":0' "$WORKDIR/resp"; then
			grep -q '"scalarMem":\[9\]' "$WORKDIR/resp" || fail "batch: wrong results: $(cat "$WORKDIR/resp")"
		else
			grep -q '"status":50[03]\|"status":429' "$WORKDIR/resp" || fail "batch: non-shed job failure: $(cat "$WORKDIR/resp")"
			SHEDS=$((SHEDS + 1))
		fi
		;;
	429 | 503) SHEDS=$((SHEDS + 1)) ;;
	*) fail "batch: unexpected status $code: $(cat "$WORKDIR/resp")" ;;
	esac
}

say "phase 0: one traced batch, stitched across both tiers"
TRACE_ID=4bf92f3577b34da6a3ce929d0e0e4736
code=$(curl -s -o "$WORKDIR/tresp" -w '%{http_code}' --max-time 20 \
	-H "traceparent: 00-$TRACE_ID-00f067aa0ba902b7-01" \
	"http://127.0.0.1:$GW_PORT/v1/batch" -d "$BATCH_BODY") || fail "traced batch: transport error"
[ "$code" = 200 ] || fail "traced batch: status $code: $(cat "$WORKDIR/tresp")"
curl -s --max-time 20 "http://127.0.0.1:$GW_PORT/debug/traces?trace=$TRACE_ID" >"$WORKDIR/trace"
grep -q "\"traceId\":\"$TRACE_ID\"" "$WORKDIR/trace" || fail "stitched trace $TRACE_ID not retrievable from the gateway"
grep -q '"service":"ascgw"' "$WORKDIR/trace" || fail "stitched trace has no gateway spans"
grep -q '"service":"ascd"' "$WORKDIR/trace" || fail "stitched trace has no backend spans"
grep -q '"name":"route"' "$WORKDIR/trace" || fail "stitched trace missing route span"
grep -q '"name":"exec"' "$WORKDIR/trace" || fail "stitched trace missing exec span"
curl -s --max-time 20 "http://127.0.0.1:$GW_PORT/debug/traces?trace=$TRACE_ID&format=waterfall" | sed 's/^/fleet-smoke:   /'
say "stitched trace OK (spans from both tiers under one id)"

SHEDS=0
say "phase 1: mixed traffic through the healthy fleet"
i=0
while [ "$i" -lt 10 ]; do
	one_run
	one_batch
	i=$((i + 1))
done
[ "$SHEDS" -eq 0 ] || fail "healthy fleet shed $SHEDS requests"

say "phase 2: killing backend 1 mid-stream"
kill -9 "$B1_PID" 2>/dev/null || true
i=0
while [ "$i" -lt 15 ]; do
	one_run
	one_batch
	i=$((i + 1))
done
say "phase 2 done ($SHEDS sheds, all other responses correct)"

# The killed backend must be ejected from the fleet scrape's up gauge.
i=0
until curl -s "http://127.0.0.1:$GW_PORT/metrics" | grep -q "asc_gw_backend_up{backend=\"127.0.0.1:$B1_PORT\"} 0"; do
	i=$((i + 1))
	[ "$i" -gt 50 ] && fail "backend 1 never ejected from asc_gw_backend_up"
	sleep 0.1
done
say "backend 1 ejected"

say "phase 3: traffic settles on the survivor"
SETTLED=0
i=0
while [ "$i" -lt 10 ]; do
	before=$SHEDS
	one_run
	[ "$SHEDS" -eq "$before" ] && SETTLED=$((SETTLED + 1))
	i=$((i + 1))
done
[ "$SETTLED" -ge 8 ] || fail "only $SETTLED/10 runs succeeded after ejection settled"

# Fleet scrape must still be well-formed and carry both tiers' series.
curl -s "http://127.0.0.1:$GW_PORT/metrics" >"$WORKDIR/scrape"
grep -q '^asc_gw_requests_total' "$WORKDIR/scrape" || fail "scrape missing gateway series"
grep -q 'asc_requests_total{backend=' "$WORKDIR/scrape" || fail "scrape missing backend-labeled series"
curl -s "http://127.0.0.1:$GW_PORT/metrics?view=fleet" | grep -q '^asc_requests_total ' || fail "fleet view missing summed series"

say "OK (0 transport errors, $SHEDS honest sheds across the kill window)"
