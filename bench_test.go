// Benchmark harness: one benchmark per table and figure of the paper plus
// the derived experiments of DESIGN.md section 5. Each benchmark measures
// the simulator's host-side speed (ns/op of regenerating the result) and
// reports the architectural quantities of interest as custom metrics
// (model-IPC, stall cycles, modeled wall-clock), so `go test -bench=.
// -benchmem` regenerates the paper's evaluation in one run. cmd/ascbench
// prints the same results as formatted tables.
package asc

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fpga"
	"repro/internal/progs"
)

// BenchmarkTable1 regenerates Table 1 (FPGA resource usage).
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	var r fpga.Report
	for i := 0; i < b.N; i++ {
		r = fpga.Estimate(fpga.PaperArch())
	}
	b.ReportMetric(float64(r.Total.LEs), "model-LEs")
	b.ReportMetric(float64(r.Total.RAMs), "model-RAMs")
	b.ReportMetric(fpga.PipelinedClockMHz(8), "model-MHz")
}

// BenchmarkFig1PipelineOrganization regenerates Figure 1.
func BenchmarkFig1PipelineOrganization(b *testing.B) {
	b.ReportAllocs()
	var s string
	for i := 0; i < b.N; i++ {
		s = experiments.Fig1()
	}
	b.ReportMetric(float64(len(s)), "graph-bytes")
}

// BenchmarkFig2Hazards regenerates the three hazard diagrams of Figure 2
// and reports the observed stall of each class.
func BenchmarkFig2Hazards(b *testing.B) {
	b.ReportAllocs()
	var bc, rd, br int64
	var err error
	for i := 0; i < b.N; i++ {
		bc, rd, br, err = experiments.Fig2Stalls()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(bc), "broadcast-stall")
	b.ReportMetric(float64(rd), "reduction-stall")
	b.ReportMetric(float64(br), "bcast-reduction-stall")
}

// BenchmarkFig3ControlUnit regenerates the Figure 3 issue trace.
func BenchmarkFig3ControlUnit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStallScaling is experiment D1: the reduction-hazard stall grows
// as log(p).
func BenchmarkStallScaling(b *testing.B) {
	b.ReportAllocs()
	for _, pes := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("pes=%d", pes), func(b *testing.B) {
			b.ReportAllocs()
			var rows []experiments.D1Row
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = experiments.D1StallScaling([]int{pes}, 4)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows[0].Measured), "stall-cycles")
			b.ReportMetric(float64(rows[0].B), "b")
			b.ReportMetric(float64(rows[0].R), "r")
		})
	}
}

// BenchmarkIPCvsThreads is experiment D2: fine-grain multithreading
// recovers IPC toward 1.
func BenchmarkIPCvsThreads(b *testing.B) {
	b.ReportAllocs()
	for _, pes := range []int{16, 256} {
		for _, threads := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("pes=%d/threads=%d", pes, threads), func(b *testing.B) {
				b.ReportAllocs()
				var rows []experiments.D2Row
				var err error
				for i := 0; i < b.N; i++ {
					rows, err = experiments.D2IPCvsThreads([]int{pes}, []int{threads}, 30)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(rows[0].IPC, "model-IPC")
				b.ReportMetric(float64(rows[0].Idle), "idle-cycles")
			})
		}
	}
}

// BenchmarkWallClock is experiment D3: wall-clock comparison of the three
// machine designs with the calibrated clock model.
func BenchmarkWallClock(b *testing.B) {
	b.ReportAllocs()
	for _, pes := range []int{16, 1024} {
		b.Run(fmt.Sprintf("pes=%d", pes), func(b *testing.B) {
			b.ReportAllocs()
			var rows []experiments.D3Row
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = experiments.D3WallClock([]int{pes}, 160)
				if err != nil {
					b.Fatal(err)
				}
			}
			wall := map[string]float64{}
			for _, r := range rows {
				wall[r.Model] = r.WallTimeMs
			}
			b.ReportMetric(wall["non-pipelined"], "np-ms")
			b.ReportMetric(wall["pipelined 1T"], "pl1T-ms")
			b.ReportMetric(wall["pipelined 16T"], "pl16T-ms")
			b.ReportMetric(wall["non-pipelined"]/wall["pipelined 16T"], "speedup")
		})
	}
}

// BenchmarkMaxPEs is experiment D4: RAM blocks limit the PE count.
func BenchmarkMaxPEs(b *testing.B) {
	b.ReportAllocs()
	var n int
	for i := 0; i < b.N; i++ {
		n, _ = fpga.MaxPEs(fpga.PaperArch(), fpga.EP2C35())
	}
	b.ReportMetric(float64(n), "max-PEs-EP2C35")
}

// BenchmarkKernels is experiment D5: every associative kernel on every
// machine model, verified against the Go oracles each iteration.
func BenchmarkKernels(b *testing.B) {
	b.ReportAllocs()
	const pes = 64
	for _, ins := range progs.Suite(pes, 2026) {
		ins := ins
		b.Run(ins.Name+"/fine-grain", func(b *testing.B) {
			b.ReportAllocs()
			var cycles int64
			for i := 0; i < b.N; i++ {
				stats, err := ins.RunCore(pes, 1, 4)
				if err != nil {
					b.Fatal(err)
				}
				cycles = stats.Cycles
			}
			b.ReportMetric(float64(cycles), "model-cycles")
		})
		b.Run(ins.Name+"/non-pipelined", func(b *testing.B) {
			b.ReportAllocs()
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := ins.RunNonPipelined(pes)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "model-cycles")
		})
	}
}

// BenchmarkAritySweep is experiment D6: broadcast tree arity ablation.
func BenchmarkAritySweep(b *testing.B) {
	b.ReportAllocs()
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			const pes = 1024
			ins := progs.MTReduction(pes, 1, 40)
			var ipc float64
			for i := 0; i < b.N; i++ {
				stats, err := ins.RunCore(pes, 1, k)
				if err != nil {
					b.Fatal(err)
				}
				ipc = stats.IPC()
			}
			b.ReportMetric(ipc, "model-IPC")
			a := fpga.PaperArch()
			a.PEs = pes
			a.Arity = k
			b.ReportMetric(float64(fpga.Network(a).LEs), "network-LEs")
		})
	}
}

// BenchmarkMultiplier is experiment D7: pipelined vs sequential multiplier.
func BenchmarkMultiplier(b *testing.B) {
	b.ReportAllocs()
	var r experiments.D7Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.D7Multiplier()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.PipelinedIPC, "pipelined-IPC")
	b.ReportMetric(r.SequentialIPC, "sequential-IPC")
}

// BenchmarkScheduler is experiment D8: rotating vs fixed priority.
func BenchmarkScheduler(b *testing.B) {
	b.ReportAllocs()
	var r experiments.D8Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.D8Scheduler()
		if err != nil {
			b.Fatal(err)
		}
	}
	minShare := 1.0
	for _, s := range r.RotatingShares {
		if s < minShare {
			minShare = s
		}
	}
	b.ReportMetric(minShare, "rotating-min-share")
	b.ReportMetric(float64(r.RotatingSpread), "rotating-finish-spread")
	b.ReportMetric(float64(r.FixedSpread), "fixed-finish-spread")
}

// BenchmarkCoarseVsFine is experiment D9: multithreading granularity.
func BenchmarkCoarseVsFine(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.D9Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.D9CoarseVsFine([]int{256})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].FineIPC, "fine-IPC")
	b.ReportMetric(rows[0].CoarseIPC, "coarse-IPC")
	b.ReportMetric(rows[0].SingleIPC, "single-IPC")
}

// BenchmarkSimulatorThroughput measures the host-side simulation speed in
// simulated cycles per second (not a paper figure; useful for sizing
// larger sweeps).
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	for _, pes := range []int{16, 256} {
		b.Run(fmt.Sprintf("pes=%d", pes), func(b *testing.B) {
			b.ReportAllocs()
			ins := progs.MTReduction(pes, 16, 50)
			total := int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := ins.RunCore(pes, 16, 4)
				if err != nil {
					b.Fatal(err)
				}
				total += stats.Cycles
			}
			b.StopTimer()
			if b.Elapsed() > 0 {
				b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "sim-cycles/s")
			}
		})
	}
}

// BenchmarkSMT is experiment D10: the two-way SMT extension.
func BenchmarkSMT(b *testing.B) {
	b.ReportAllocs()
	var r experiments.D10Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.D10SMT()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.SingleIPC, "single-IPC")
	b.ReportMetric(r.SMTIPC, "smt-IPC")
}

// BenchmarkPEOrganizations is experiment D11: block-RAM vs LUT register
// files (the section-9 future-work organization).
func BenchmarkPEOrganizations(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.D11Row
	for i := 0; i < b.N; i++ {
		rows = experiments.D11Organizations(fpga.EP2C35())
	}
	for _, r := range rows {
		if r.Threads == 2 {
			b.ReportMetric(float64(r.LUTMaxPEs), "lut-maxPEs-2T")
		}
		if r.Threads == 16 {
			b.ReportMetric(float64(r.LUTMaxPEs), "lut-maxPEs-16T")
			b.ReportMetric(float64(r.BlockRAMMaxPEs), "blockram-maxPEs-16T")
		}
	}
}

// BenchmarkASCLCompiler is experiment D12: ASCL-compiled kernels vs
// hand-written assembly, both validated against the same oracles.
func BenchmarkASCLCompiler(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.D12Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.D12Compiler(32)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, r := range rows {
		if ratio := float64(r.CompiledCycles) / float64(r.HandCycles); ratio > worst {
			worst = ratio
		}
	}
	b.ReportMetric(worst, "worst-cycle-ratio")
}

// BenchmarkLargeArray compares the host execution engines on wide PE
// arrays: a multithreaded reduction kernel at 256 and 1024 PEs on the
// serial loop vs. the sharded worker pool. The engines are bit-identical
// (the model-cycles metric must match between the two variants of each
// size); ns/op is the host-side payoff of sharding on multi-core machines.
func BenchmarkLargeArray(b *testing.B) {
	for _, pes := range []int{256, 1024} {
		ins := progs.MTReduction(pes, 8, 20)
		prog, err := Assemble(ins.Source)
		if err != nil {
			b.Fatal(err)
		}
		for _, engine := range []Engine{EngineSerial, EngineParallel} {
			b.Run(fmt.Sprintf("pes=%d/%v", pes, engine), func(b *testing.B) {
				b.ReportAllocs()
				var cycles int64
				for i := 0; i < b.N; i++ {
					p, err := New(Config{PEs: pes, Threads: 8, Width: ins.Width, Engine: engine}, prog)
					if err != nil {
						b.Fatal(err)
					}
					if err := p.LoadLocalMem(ins.LocalMem); err != nil {
						b.Fatal(err)
					}
					stats, err := p.Run(0)
					if err != nil {
						b.Fatal(err)
					}
					cycles = stats.Cycles
					p.core.Machine().Close()
				}
				b.ReportMetric(float64(cycles), "model-cycles")
			})
		}
	}
}

// BenchmarkStructuralValidation is experiment D13: the kernel suite under
// structural network co-simulation (value + latency checked per reduction).
func BenchmarkStructuralValidation(b *testing.B) {
	b.ReportAllocs()
	var total int64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.D13Validation(32, 2026)
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, r := range rows {
			total += r.Reductions
		}
	}
	b.ReportMetric(float64(total), "reductions-validated")
}
