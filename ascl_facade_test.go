package asc

import (
	"strings"
	"testing"
)

func TestCompileASCLFacade(t *testing.T) {
	prog, asmText, err := CompileASCL(`
		parallel v = idx();
		write(0, sumval(v * v));
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asmText, "rsum") {
		t.Errorf("assembly missing rsum:\n%s", asmText)
	}
	proc, err := New(Config{PEs: 8, Threads: 1, Width: 16}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := proc.ScalarMem(0); got != 140 {
		t.Errorf("sum of squares = %d, want 140", got)
	}
}

func TestCompileASCLError(t *testing.T) {
	if _, _, err := CompileASCL("x = 1;"); err == nil {
		t.Error("bad program accepted")
	}
}
