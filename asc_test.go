package asc

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	prog, err := Assemble(`
		plw p1, 0(p0)
		rmax s1, p1
		sw s1, 0(s0)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := New(Config{PEs: 8, Threads: 1, Width: 16}, prog)
	if err != nil {
		t.Fatal(err)
	}
	vals := [][]int64{{3}, {99}, {12}, {7}, {55}, {1}, {42}, {98}}
	if err := proc.LoadLocalMem(vals); err != nil {
		t.Fatal(err)
	}
	stats, err := proc.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := proc.ScalarMem(0); got != 99 {
		t.Errorf("max = %d, want 99", got)
	}
	if stats.Instructions != 4 {
		t.Errorf("instructions = %d, want 4", stats.Instructions)
	}
	if stats.IPC() <= 0 || stats.IPC() > 1 {
		t.Errorf("IPC = %f", stats.IPC())
	}
}

func TestDefaultsArePaperPrototype(t *testing.T) {
	proc, err := New(Config{}, MustAssemble("halt"))
	if err != nil {
		t.Fatal(err)
	}
	b, r := proc.NetworkLatencies()
	if b != 2 || r != 4 {
		t.Errorf("default b=%d r=%d, want 2, 4 (16 PEs, k=4)", b, r)
	}
	d := proc.Describe()
	if !strings.Contains(d, "16 PEs") || !strings.Contains(d, "16 hardware threads") {
		t.Errorf("defaults: %s", d)
	}
}

func TestProgramIntrospection(t *testing.T) {
	prog := MustAssemble(`
	main:
		li s1, 5
		halt
	`)
	if prog.Len() != 2 {
		t.Errorf("len = %d", prog.Len())
	}
	if addr, ok := prog.Label("main"); !ok || addr != 0 {
		t.Errorf("label main = %d, %v", addr, ok)
	}
	if len(prog.Words()) != 2 {
		t.Error("missing encoded words")
	}
	if !strings.Contains(prog.Listing(), "addi s1, s0, 5") {
		t.Errorf("listing:\n%s", prog.Listing())
	}
}

func TestDataSegmentAutoloaded(t *testing.T) {
	prog := MustAssemble(`
		.data
	v:	.word 41
		.text
		li s1, v
		lw s2, 0(s1)
		addi s2, s2, 1
		sw s2, 1(s1)
		halt
	`)
	proc, err := New(Config{PEs: 2, Width: 16}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := proc.ScalarMem(1); got != 42 {
		t.Errorf("result = %d, want 42", got)
	}
}

func TestPipelineDiagramAndGraph(t *testing.T) {
	proc, err := New(Config{PEs: 16, Threads: 1, TraceDepth: -1}, MustAssemble(`
		rmax s1, p1
		sub s2, s1, s3
		halt
	`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Run(0); err != nil {
		t.Fatal(err)
	}
	d := proc.PipelineDiagram()
	for _, frag := range []string{"rmax", "sub", "R4", "ID"} {
		if !strings.Contains(d, frag) {
			t.Errorf("diagram missing %q:\n%s", frag, d)
		}
	}
	g := proc.PipelineGraph()
	if !strings.Contains(g, "reduction path") {
		t.Errorf("graph:\n%s", g)
	}
}

func TestStatsCauses(t *testing.T) {
	proc, _ := New(Config{PEs: 64, Threads: 1, Width: 16}, MustAssemble(`
		pidx p1
		rmax s1, p1
		add s2, s1, s0
		halt
	`))
	stats, err := proc.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.IdleByCause["reduction"] == 0 {
		t.Errorf("expected reduction idle cycles, got %v", stats.IdleByCause)
	}
	if stats.StallByCause["reduction"] == 0 {
		t.Errorf("expected reduction stalls, got %v", stats.StallByCause)
	}
	if !strings.Contains(FormatStats(stats), "reduction") {
		t.Error("FormatStats missing cause breakdown")
	}
}

func TestBaselinesAgreeWithCore(t *testing.T) {
	src := `
		plw p1, 0(p0)
		rsum s1, p1
		sw s1, 0(s0)
		halt
	`
	vals := [][]int64{{10}, {20}, {30}, {40}}
	cfg := Config{PEs: 4, Threads: 2, Width: 16}

	proc, _ := New(cfg, MustAssemble(src))
	proc.LoadLocalMem(vals)
	if _, err := proc.Run(0); err != nil {
		t.Fatal(err)
	}

	np, err := NewNonPipelined(cfg, MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	np.LoadLocalMem(vals)
	npRes, err := np.Run(0)
	if err != nil {
		t.Fatal(err)
	}

	cg, err := NewCoarseGrain(cfg, MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	cg.LoadLocalMem(vals)
	if _, err := cg.Run(0); err != nil {
		t.Fatal(err)
	}

	want := int64(100)
	if proc.ScalarMem(0) != want || np.ScalarMem(0) != want || cg.ScalarMem(0) != want {
		t.Errorf("results differ: core %d, np %d, cg %d",
			proc.ScalarMem(0), np.ScalarMem(0), cg.ScalarMem(0))
	}
	if npRes.Instructions != 4 {
		t.Errorf("np instructions = %d", npRes.Instructions)
	}
}

func TestResourceModelFacade(t *testing.T) {
	r := EstimateResources(Config{})
	if r.TotalLEs != 9672 || r.TotalRAMs != 104 {
		t.Errorf("paper config resources = %d LEs / %d RAMs, want 9672 / 104", r.TotalLEs, r.TotalRAMs)
	}
	if !strings.Contains(r.String(), "Control Unit") {
		t.Error("report formatting")
	}
	n, binding, err := MaxPEsOnDevice(Config{}, "EP2C35")
	if err != nil || n != 16 || binding != "RAMs" {
		t.Errorf("MaxPEsOnDevice = %d, %s, %v", n, binding, err)
	}
	if _, _, err := MaxPEsOnDevice(Config{}, "nope"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestClockModelFacade(t *testing.T) {
	if f := PipelinedClockMHz(Config{}); f < 74 || f > 76 {
		t.Errorf("pipelined clock = %.2f, want ~75", f)
	}
	small := NonPipelinedClockMHz(Config{PEs: 16})
	large := NonPipelinedClockMHz(Config{PEs: 1024})
	if large >= small {
		t.Error("non-pipelined clock should degrade with PEs")
	}
	if ms := WallTimeMs(75000, 75); ms < 0.99 || ms > 1.01 {
		t.Errorf("wall time = %f", ms)
	}
}

func TestFixedPriorityConfig(t *testing.T) {
	proc, err := New(Config{PEs: 4, Threads: 2, FixedPriority: true}, MustAssemble("halt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestStepAPI(t *testing.T) {
	proc, _ := New(Config{PEs: 2}, MustAssemble("nop\nhalt"))
	steps := 0
	for {
		more, err := proc.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
		steps++
		if steps > 100 {
			t.Fatal("did not finish")
		}
	}
	if steps == 0 {
		t.Error("no steps taken")
	}
}

func TestAssembleError(t *testing.T) {
	if _, err := Assemble("bogus s1"); err == nil {
		t.Error("bad source accepted")
	}
}
