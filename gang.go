package asc

import (
	"context"

	"repro/internal/core"
)

// Gang runs several jobs of the same Program and Config in lockstep behind
// one shared cycle-accurate front end: one fetch/decode/schedule/issue pass
// per cycle drives every job's ("lane's") architectural state, the cross-job
// analogue of the paper's one-instruction-to-all-PEs broadcast. The serving
// daemon gangs same-program batch jobs this way; each lane's results and
// statistics are bit-identical to a solo Processor run.
//
// Lockstep requires the lanes' control behavior to agree. A lane whose
// branch, trap, halt, spawn, or interthread-sync behavior diverges from the
// gang "peels": it leaves the gang at a quiescent point carrying an
// architectural Snapshot, which the caller resumes on an ordinary Processor
// via Restore. Gangs do not support SMT, tracing, or structural network
// co-simulation; NewGang rejects such configurations.
type Gang struct {
	cfg  Config
	prog *Program
	core *core.Gang
}

// GangLaneResult is the terminal state of one gang lane.
type GangLaneResult struct {
	// Stats is the lane's run statistics: the full run for lanes that
	// completed in lockstep (identical to a solo run), or the gang-phase
	// prefix for peeled lanes.
	Stats Stats
	// Err is the lane's terminal error — an architectural trap, a wrapped
	// ErrCycleLimit, or a context error — and nil for a clean halt or a
	// peeled lane.
	Err error
	// Peeled marks a lane that diverged and must be resumed on a solo
	// Processor: Restore(Snapshot), then run with the remaining budget.
	// PeelCycle is the gang cycle the lane left at.
	Peeled    bool
	PeelCycle int64
	Snapshot  []byte
}

// NewGang builds a gang of lanes running prog, sharing the program's
// decoded form and allocating all lanes' state as contiguous planes.
func NewGang(cfg Config, prog *Program, lanes int) (*Gang, error) {
	g, err := core.NewGangDecoded(cfg.coreConfig(), prog.dec, lanes)
	if err != nil {
		return nil, err
	}
	ng := &Gang{cfg: cfg, prog: prog, core: g}
	if err := ng.loadDataSegments(); err != nil {
		return nil, err
	}
	return ng, nil
}

// loadDataSegments initializes every lane's scalar memory from the
// program's .data image.
func (g *Gang) loadDataSegments() error {
	if len(g.prog.prog.Data) == 0 {
		return nil
	}
	img := make([]int64, len(g.prog.prog.Data))
	for i, w := range g.prog.prog.Data {
		img[i] = int64(w)
	}
	for i := 0; i < g.core.Lanes(); i++ {
		if err := g.core.Lane(i).LoadScalarMem(img); err != nil {
			return err
		}
	}
	return nil
}

// Lanes returns the number of lanes the gang was built with.
func (g *Gang) Lanes() int { return g.core.Lanes() }

// Config returns the configuration the gang was built with.
func (g *Gang) Config() Config { return g.cfg }

// Reset returns every lane to power-on state without reallocating the
// shared state planes, then reloads the program's data segment; like
// Processor.Reset, the serving pool uses it to recycle warm gangs.
func (g *Gang) Reset() error {
	g.core.Reset()
	return g.loadDataSegments()
}

// SetProgram swaps in a new program and Resets the gang; allocations are
// unchanged, so a pooled gang serves a stream of different programs.
func (g *Gang) SetProgram(prog *Program) error {
	g.core.SetDecoded(prog.dec)
	g.prog = prog
	return g.loadDataSegments()
}

// LoadLocalMem initializes lane's PE local memories: data[pe][word].
func (g *Gang) LoadLocalMem(lane int, data [][]int64) error {
	return g.core.Lane(lane).LoadLocalMem(data)
}

// LoadScalarMem initializes lane's control unit data memory from address 0.
func (g *Gang) LoadScalarMem(lane int, data []int64) error {
	return g.core.Lane(lane).LoadScalarMem(data)
}

// Run simulates until every lane has halted, trapped, or peeled, or until
// maxCycles elapse (0 = unlimited), returning one result per lane.
func (g *Gang) Run(maxCycles int64) []GangLaneResult {
	return g.RunContext(context.Background(), maxCycles)
}

// RunContext is Run with cooperative cancellation, like
// Processor.RunContext; lanes still in lockstep when ctx ends finalize with
// its error.
func (g *Gang) RunContext(ctx context.Context, maxCycles int64) []GangLaneResult {
	res := g.core.RunContext(ctx, maxCycles)
	out := make([]GangLaneResult, len(res))
	for i, lr := range res {
		out[i] = GangLaneResult{
			Stats:     convertStats(lr.Stats),
			Err:       lr.Err,
			Peeled:    lr.Peeled,
			PeelCycle: lr.PeelCycle,
			Snapshot:  lr.Snapshot,
		}
	}
	return out
}

// ScalarMem reads word w of lane's control unit data memory.
func (g *Gang) ScalarMem(lane, w int) int64 { return g.core.Lane(lane).ScalarMem(w) }

// LocalMem reads word w of PE pe's local memory in lane.
func (g *Gang) LocalMem(lane, pe, w int) int64 { return g.core.Lane(lane).LocalMem(pe, w) }

// Snapshot serializes lane's complete architectural state; it restores
// into a Processor (or gang lane) built with the same Config and Program.
func (g *Gang) Snapshot(lane int) []byte { return g.core.Lane(lane).Snapshot() }
