// Quickstart: the canonical associative operation — find the global maximum
// of values spread across the PE array in a single RMAX instruction, on the
// paper's default machine (16 8-bit PEs, 16 hardware threads, 4-ary
// broadcast tree).
package main

import (
	"fmt"
	"log"

	asc "repro"
)

func main() {
	prog, err := asc.Assemble(`
		; each PE holds one value in local memory word 0
		plw p1, 0(p0)     ; parallel load into p1 on every PE
		rmax s1, p1       ; global maximum through the max/min tree
		rmin s2, p1       ; and the minimum
		rsum s3, p1       ; saturating sum
		sw s1, 0(s0)      ; results into control-unit data memory
		sw s2, 1(s0)
		sw s3, 2(s0)
		halt
	`)
	if err != nil {
		log.Fatal(err)
	}

	proc, err := asc.New(asc.Config{Width: 16, TraceDepth: -1}, prog)
	if err != nil {
		log.Fatal(err)
	}

	values := [][]int64{
		{23}, {7}, {91}, {44}, {5}, {68}, {30}, {12},
		{85}, {2}, {77}, {51}, {19}, {63}, {38}, {90},
	}
	if err := proc.LoadLocalMem(values); err != nil {
		log.Fatal(err)
	}

	stats, err := proc.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(proc.Describe())
	fmt.Printf("\nmax = %d, min = %d, sum = %d\n",
		proc.ScalarMem(0), proc.ScalarMem(1), proc.ScalarMem(2))
	fmt.Printf("\n%s", asc.FormatStats(stats))
	fmt.Println("\npipeline diagram (note the b+r reduction-hazard stalls between\ndependent reductions and the stores that consume them):")
	fmt.Print(proc.PipelineDiagram())
}
