// Asclang: the same associative workload written three times — in raw MTASC
// assembly, via the public API, and in ASCL (the associative data-parallel
// language, compiled on the fly). All three produce identical answers; the
// ASCL version shows what "software for the architecture" (the paper's
// section 9 future work) looks like: searches are comparisons, selections
// are masks, and global questions are single reductions.
package main

import (
	"fmt"
	"log"

	asc "repro"
)

const pes = 32

// The workload: PE-local sensor readings; find how many exceed a threshold,
// their saturating sum, the hottest sensor, and visit the three hottest
// one at a time (responder iteration).
const asclSource = `
	scalar threshold = read(0);
	parallel reading = pread(0);
	flag hot = reading > threshold;

	write(1, countval(hot));
	write(2, sumval(reading));
	write(3, maxval(reading));

	// Visit every hot sensor, hottest-last not guaranteed: foreach walks
	// responders in PE order, accumulating ids and clearing as it goes.
	scalar visited = 0;
	scalar idsum = 0;
	parallel id = idx();
	foreach (hot) {
		visited = visited + 1;
		idsum = idsum + this(id);
	}
	write(4, visited);
	write(5, idsum);
`

func main() {
	prog, asmText, err := asc.CompileASCL(asclSource)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated assembly:")
	fmt.Println(asmText)

	proc, err := asc.New(asc.Config{PEs: pes, Threads: 1, Width: 16}, prog)
	if err != nil {
		log.Fatal(err)
	}

	readings := make([][]int64, pes)
	threshold := int64(75)
	wantCount, wantIDSum := int64(0), int64(0)
	wantMax := int64(0)
	for i := range readings {
		v := int64((i*37 + 11) % 100)
		readings[i] = []int64{v}
		if v > threshold {
			wantCount++
			wantIDSum += int64(i)
		}
		if v > wantMax {
			wantMax = v
		}
	}
	if err := proc.LoadLocalMem(readings); err != nil {
		log.Fatal(err)
	}
	if err := proc.LoadScalarMem([]int64{threshold}); err != nil {
		log.Fatal(err)
	}
	stats, err := proc.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hot sensors: %d (want %d)\n", proc.ScalarMem(1), wantCount)
	fmt.Printf("hottest:     %d (want %d)\n", proc.ScalarMem(3), wantMax)
	fmt.Printf("visited:     %d, id sum %d (want %d, %d)\n",
		proc.ScalarMem(4), proc.ScalarMem(5), wantCount, wantIDSum)
	if proc.ScalarMem(1) != wantCount || proc.ScalarMem(3) != wantMax ||
		proc.ScalarMem(4) != wantCount || proc.ScalarMem(5) != wantIDSum {
		log.Fatal("MISMATCH against Go reference")
	}
	fmt.Printf("\n%d instructions, %d cycles, IPC %.3f\n",
		stats.Instructions, stats.Cycles, stats.IPC())
}
