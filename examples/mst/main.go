// MST: the associative formulation of Prim's minimum-spanning-tree
// algorithm — one graph node per PE, the cheapest frontier edge found with
// RMIN, the new tree node picked with the multiple response resolver
// (RFIRST), and candidate distances updated in parallel. This is the
// classic ASC-model workload (Potter et al., "ASC: An Associative-Computing
// Paradigm"), and the worst case for reduction hazards: three dependent
// reductions per iteration.
//
// The example runs the same graph on the fine-grain multithreaded core and
// on the non-pipelined baseline, checks both against a Go implementation of
// Prim's algorithm, and compares modeled wall-clock times.
package main

import (
	"fmt"
	"log"
	"math/rand"

	asc "repro"
)

const (
	nodes = 32
	inf   = 20000
	maxW  = 100
)

func program() string {
	return fmt.Sprintf(`
		pidx p1           ; node id
		plw p2, 0(p0)     ; dist[j] = w(j, node 0)
		pceq f3, p1, s0   ; in-tree = {node 0}
		li s1, %d         ; n-1 edges to add
		li s2, 0          ; MST weight
	loop:
		fnot f4, f3       ; frontier mask
		rmin s3, p2 ?f4   ; cheapest edge into the tree
		add s2, s2, s3
		pceq f5, p2, s3 ?f4
		rfirst f6, f5 ?f4 ; pick one endpoint (multiple response resolver)
		for f3, f3, f6
		ror s4, p1 ?f6    ; its node id
		pmov p5, s4
		plw p6, 0(p5)     ; weights to the new node
		pclt f7, p6, p2
		pmov p2, p6 ?f7   ; relax
		addi s1, s1, -1
		bnez s1, loop
		sw s2, 0(s0)
		halt
	`, nodes-1)
}

// randomGraph builds a symmetric complete graph.
func randomGraph(seed int64) [][]int64 {
	r := rand.New(rand.NewSource(seed))
	adj := make([][]int64, nodes)
	for i := range adj {
		adj[i] = make([]int64, nodes)
		adj[i][i] = inf
	}
	for i := 0; i < nodes; i++ {
		for j := i + 1; j < nodes; j++ {
			w := 1 + r.Int63n(maxW)
			adj[i][j], adj[j][i] = w, w
		}
	}
	return adj
}

// primReference is the oracle.
func primReference(adj [][]int64) int64 {
	dist := make([]int64, nodes)
	in := make([]bool, nodes)
	for i := range dist {
		dist[i] = inf * 10
	}
	dist[0] = 0
	total := int64(0)
	for it := 0; it < nodes; it++ {
		best := -1
		for j, d := range dist {
			if !in[j] && (best < 0 || d < dist[best]) {
				best = j
			}
		}
		in[best] = true
		total += dist[best]
		for j := range dist {
			if !in[j] && adj[best][j] < dist[j] {
				dist[j] = adj[best][j]
			}
		}
	}
	return total
}

func main() {
	adj := randomGraph(7)
	want := primReference(adj)
	prog, err := asc.Assemble(program())
	if err != nil {
		log.Fatal(err)
	}
	cfg := asc.Config{PEs: nodes, Threads: 1, Width: 16, LocalMemWords: nodes}

	// Fine-grain multithreaded core (running a single thread here: MST is
	// a sequential chain of reductions, so it exposes the full hazard
	// cost).
	proc, err := asc.New(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	if err := proc.LoadLocalMem(adj); err != nil {
		log.Fatal(err)
	}
	stats, err := proc.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	got := proc.ScalarMem(0)
	fmt.Printf("MST weight (pipelined MTASC): %d, reference: %d\n", got, want)
	if got != want {
		log.Fatalf("MISMATCH: %d != %d", got, want)
	}
	fmt.Printf("  cycles %d, instructions %d, IPC %.3f\n", stats.Cycles, stats.Instructions, stats.IPC())
	fmt.Printf("  idle by cause: %v\n", stats.IdleByCause)

	// Non-pipelined baseline: fewer cycles (CPI ~1, no hazards) but a much
	// slower clock at scale.
	np, err := asc.NewNonPipelined(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	if err := np.LoadLocalMem(adj); err != nil {
		log.Fatal(err)
	}
	npRes, err := np.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	if np.ScalarMem(0) != want {
		log.Fatalf("non-pipelined MISMATCH: %d != %d", np.ScalarMem(0), want)
	}
	fmt.Printf("MST weight (non-pipelined):   %d\n", np.ScalarMem(0))
	fmt.Printf("  cycles %d, instructions %d\n", npRes.Cycles, npRes.Instructions)

	plMHz := asc.PipelinedClockMHz(cfg)
	npMHz := asc.NonPipelinedClockMHz(cfg)
	fmt.Printf("\nwall clock: pipelined %.3f us @ %.1f MHz vs non-pipelined %.3f us @ %.1f MHz\n",
		1000*asc.WallTimeMs(stats.Cycles, plMHz), plMHz,
		1000*asc.WallTimeMs(npRes.Cycles, npMHz), npMHz)
}
