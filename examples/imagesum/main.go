// Imagesum: the image-processing workload of section 6.4 — each PE owns a
// block of pixels, accumulates it locally, and the pipelined saturating sum
// unit produces the global total while the max/min unit finds the brightest
// block. Demonstrates the sum unit's saturation semantics: the 16-bit
// result clips at 32767 exactly like the hardware adder tree.
package main

import (
	"fmt"
	"log"
	"math/rand"

	asc "repro"
)

const (
	pes       = 64
	blockSize = 64 // pixels per PE
)

func main() {
	src := fmt.Sprintf(`
		li s1, %d         ; pixels per block
		pli p1, 0         ; address
		pli p2, 0         ; accumulator
	loop:
		plw p3, 0(p1)
		padd p2, p2, p3
		paddi p1, p1, 1
		addi s1, s1, -1
		bnez s1, loop
		rsum s2, p2       ; global brightness (saturating adder tree)
		sw s2, 0(s0)
		rmaxu s3, p2      ; brightest block
		sw s3, 1(s0)
		rminu s4, p2      ; darkest block
		sw s4, 2(s0)
		halt
	`, blockSize)

	prog, err := asc.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	proc, err := asc.New(asc.Config{PEs: pes, Threads: 1, Width: 16, LocalMemWords: blockSize}, prog)
	if err != nil {
		log.Fatal(err)
	}

	r := rand.New(rand.NewSource(11))
	img := make([][]int64, pes)
	blockSums := make([]int64, pes)
	exact := int64(0)
	for i := range img {
		img[i] = make([]int64, blockSize)
		for j := range img[i] {
			px := r.Int63n(256)
			img[i][j] = px
			blockSums[i] += px
			exact += px
		}
	}
	if err := proc.LoadLocalMem(img); err != nil {
		log.Fatal(err)
	}
	stats, err := proc.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	sum := proc.ScalarMem(0)
	brightest := proc.ScalarMem(1)
	darkest := proc.ScalarMem(2)
	fmt.Printf("%d PEs x %d pixels = %d pixels total\n", pes, blockSize, pes*blockSize)
	fmt.Printf("exact sum:      %d\n", exact)
	fmt.Printf("machine sum:    %d (saturated to the 16-bit sum unit's limit: %v)\n",
		sum, exact > 32767)
	fmt.Printf("brightest block: %d, darkest block: %d\n", brightest, darkest)

	wantMax, wantMin := blockSums[0], blockSums[0]
	for _, s := range blockSums {
		if s > wantMax {
			wantMax = s
		}
		if s < wantMin {
			wantMin = s
		}
	}
	if brightest != wantMax || darkest != wantMin {
		log.Fatalf("MISMATCH: max/min blocks %d/%d, want %d/%d", brightest, darkest, wantMax, wantMin)
	}
	if exact > 32767 && sum != 32767 {
		fmt.Println("note: tree-level saturation can clip below the final limit when")
		fmt.Println("intermediate sums overflow; this matches the hardware adder tree")
	}
	fmt.Printf("\n%d cycles, %d instructions, IPC %.3f\n", stats.Cycles, stats.Instructions, stats.IPC())
}
