// Asclmst: Prim's minimum spanning tree written entirely in ASCL, the
// associative language — no assembly in sight. One graph node per PE, the
// cheapest frontier edge found with minval, the node joining the tree
// picked with mindex (the classic ASC mindex operation), distances relaxed
// under a where mask. Compare with examples/mst, which is the same
// algorithm in hand-written MTASC assembly.
package main

import (
	"fmt"
	"log"
	"math/rand"

	asc "repro"
)

const (
	nodes = 24
	inf   = 20000
	maxW  = 100
)

const mstSource = `
	parallel id = idx();
	parallel dist = pread(0);            // w(j, node 0)
	flag intree = id == 0;
	scalar total = 0;
	scalar remaining = countval(!intree);

	while (remaining > 0) {
		scalar best = 0;
		scalar newnode = 0;
		where (!intree) {
			best = minval(dist);         // cheapest frontier edge
			newnode = mindex(dist);      // the node it reaches
		}
		total = total + best;
		intree = intree || (id == newnode);

		parallel wnew = pread(newnode);  // weights to the new tree node
		where (!intree && (wnew < dist)) {
			dist = wnew;                 // relax
		}
		remaining = remaining - 1;
	}
	write(0, total);
`

func main() {
	// Random symmetric graph.
	r := rand.New(rand.NewSource(21))
	adj := make([][]int64, nodes)
	for i := range adj {
		adj[i] = make([]int64, nodes)
		adj[i][i] = inf
	}
	for i := 0; i < nodes; i++ {
		for j := i + 1; j < nodes; j++ {
			w := 1 + r.Int63n(maxW)
			adj[i][j], adj[j][i] = w, w
		}
	}

	// Go reference (Prim).
	dist := make([]int64, nodes)
	in := make([]bool, nodes)
	for i := range dist {
		dist[i] = inf * 10
	}
	dist[0] = 0
	want := int64(0)
	for it := 0; it < nodes; it++ {
		best := -1
		for j, d := range dist {
			if !in[j] && (best < 0 || d < dist[best]) {
				best = j
			}
		}
		in[best] = true
		want += dist[best]
		for j := range dist {
			if !in[j] && adj[best][j] < dist[j] {
				dist[j] = adj[best][j]
			}
		}
	}

	prog, asmText, err := asc.CompileASCL(mstSource)
	if err != nil {
		log.Fatal(err)
	}
	proc, err := asc.New(asc.Config{PEs: nodes, Threads: 1, Width: 16, LocalMemWords: nodes}, prog)
	if err != nil {
		log.Fatal(err)
	}
	if err := proc.LoadLocalMem(adj); err != nil {
		log.Fatal(err)
	}
	stats, err := proc.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	got := proc.ScalarMem(0)
	fmt.Printf("MST weight: ASCL program %d, Go reference %d\n", got, want)
	if got != want {
		log.Fatal("MISMATCH")
	}
	fmt.Printf("compiled to %d instructions; ran %d issued instructions in %d cycles (IPC %.3f)\n",
		prog.Len(), stats.Instructions, stats.Cycles, stats.IPC())
	fmt.Printf("the generated assembly is %d lines; see examples/mst for the hand-written version\n",
		len(splitLines(asmText)))
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	return lines
}
