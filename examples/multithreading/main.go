// Multithreading: the paper's headline result, end to end. A chain of
// dependent reductions stalls a single thread b+r cycles per iteration; the
// fine-grain multithreaded scheduler fills those slots with instructions
// from other hardware threads. This example sweeps the thread count on a
// 256-PE machine (b=4, r=8) and prints the IPC recovery curve, then shows
// thread spawning, mailboxes, and join from assembly.
package main

import (
	"fmt"
	"log"
	"strings"

	asc "repro"
)

const pes = 256

// workload builds a program where `threads` hardware threads each run a
// chain of dependent reductions, synchronizing completion via mailboxes.
func workload(threads, iters int) string {
	var b strings.Builder
	for i := 1; i < threads; i++ {
		b.WriteString("\ttspawn s9, work\n")
	}
	fmt.Fprintf(&b, `
	work:
		tid s10
		pidx p1
		li s2, %d
	loop:
		rmax s1, p1       ; reduction result ...
		add s3, s3, s1    ; ... consumed by a scalar op: the b+r hazard
		addi s2, s2, -1
		bnez s2, loop
		sw s3, 0(s10)
		tid s11
		bnez s11, workerexit
		li s12, %d
	wait:
		beqz s12, alldone
		trecv s13         ; collect one completion message
		addi s12, s12, -1
		j wait
	alldone:
		halt
	workerexit:
		tsend s0, s11     ; tell thread 0 we are done
		texit
	`, iters, threads-1)
	return b.String()
}

func main() {
	fmt.Printf("IPC vs hardware threads, %d PEs (b=4, r=8: 12-cycle reduction hazard)\n\n", pes)
	fmt.Printf("%8s  %10s  %12s  %s\n", "threads", "IPC", "idle cycles", "dominant idle cause")

	const iters = 50
	for _, threads := range []int{1, 2, 4, 8, 12, 16, 24, 32} {
		prog, err := asc.Assemble(workload(threads, iters))
		if err != nil {
			log.Fatal(err)
		}
		proc, err := asc.New(asc.Config{PEs: pes, Threads: threads, Width: 16}, prog)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := proc.Run(50_000_000)
		if err != nil {
			log.Fatal(err)
		}
		// Verify every thread computed iters * (p-1).
		want := int64(iters * (pes - 1) & 0xffff)
		for t := 0; t < threads; t++ {
			if got := proc.ScalarMem(t); got != want {
				log.Fatalf("thread %d result %d, want %d", t, got, want)
			}
		}
		cause := "-"
		var best int64
		for k, v := range stats.IdleByCause {
			if v > best {
				best, cause = v, k
			}
		}
		fmt.Printf("%8d  %10.3f  %12d  %s\n", threads, stats.IPC(), stats.IdleCycles, cause)
	}

	fmt.Println("\nwith enough runnable threads there is always an instruction to issue:")
	fmt.Println("fine-grain multithreading hides the reduction-hazard stalls that")
	fmt.Println("pipelining the broadcast/reduction network introduced (section 5).")
}
