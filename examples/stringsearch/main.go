// Stringsearch: associative pattern matching. Every PE holds one candidate
// window of the text; each pattern character is broadcast once and compared
// against all windows simultaneously, so the whole search costs O(m)
// instructions for a pattern of length m, independent of text length (up to
// the PE count). The responder count at the end is the number of matches,
// and the resolver walks the match positions.
package main

import (
	"fmt"
	"log"
	"strings"

	asc "repro"
)

const (
	text    = "the quick brown fox jumps over the lazy dog; the fox ran."
	pattern = "the"
)

func main() {
	p := len(text) - len(pattern) + 1 // candidate windows = PEs
	m := len(pattern)

	src := fmt.Sprintf(`
		fset f1           ; every window is still a candidate
		li s1, 0          ; pattern index j
		li s2, %d         ; m
	loop:
		lw s3, 0(s1)      ; broadcast pattern[j]
		pmov p3, s1
		plw p2, 0(p3)     ; window[j] on every PE
		pceq f2, p2, s3
		fand f1, f1, f2   ; survive only if still matching
		inc s1
		blt s1, s2, loop
		rcount s4, f1     ; number of matches
		sw s4, %d(s0)
		; walk the match positions with the resolver
		pidx p1
		li s5, %d         ; output cursor
	walk:
		rany s6, f1
		beqz s6, done
		rfirst f2, f1
		ror s7, p1 ?f2    ; position of this match
		sw s7, 0(s5)
		inc s5
		fandn f1, f1, f2
		j walk
	done:
		halt
	`, m, m, m+1)

	prog, err := asc.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	proc, err := asc.New(asc.Config{PEs: p, Threads: 1, Width: 16, LocalMemWords: m}, prog)
	if err != nil {
		log.Fatal(err)
	}

	// PE i holds the window starting at text[i].
	windows := make([][]int64, p)
	for i := range windows {
		w := make([]int64, m)
		for j := 0; j < m; j++ {
			w[j] = int64(text[i+j])
		}
		windows[i] = w
	}
	if err := proc.LoadLocalMem(windows); err != nil {
		log.Fatal(err)
	}
	pat := make([]int64, m)
	for j := range pat {
		pat[j] = int64(pattern[j])
	}
	if err := proc.LoadScalarMem(pat); err != nil {
		log.Fatal(err)
	}

	stats, err := proc.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	count := proc.ScalarMem(m)
	fmt.Printf("text:    %q\npattern: %q\nmatches: %d at positions ", text, pattern, count)
	var positions []string
	for i := int64(0); i < count; i++ {
		positions = append(positions, fmt.Sprint(proc.ScalarMem(m+1+int(i))))
	}
	fmt.Println(strings.Join(positions, ", "))

	// Verify against strings.Index-style scanning.
	want := 0
	for i := 0; i+len(pattern) <= len(text); i++ {
		if text[i:i+len(pattern)] == pattern {
			want++
		}
	}
	if int(count) != want {
		log.Fatalf("MISMATCH: machine found %d, reference %d", count, want)
	}
	fmt.Printf("\nsearch cost: %d instructions, %d cycles (IPC %.3f) — O(m) broadcasts\nfor %d candidate windows in parallel\n",
		stats.Instructions, stats.Cycles, stats.IPC(), p)
}
