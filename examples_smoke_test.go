package asc

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example main end to end; each example
// verifies itself against a Go reference and fails loudly on mismatch.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run the toolchain; skipped in -short mode")
	}
	examples := []string{
		"quickstart", "mst", "stringsearch", "imagesum",
		"multithreading", "asclang", "asclmst",
	}
	for _, name := range examples {
		name := name
		t.Run(name, func(t *testing.T) {
			out, err := exec.Command("go", "run", "./examples/"+name).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if strings.Contains(string(out), "MISMATCH") {
				t.Fatalf("example %s reported a mismatch:\n%s", name, out)
			}
		})
	}
}
