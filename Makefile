# Developer entry points. `make check` is what CI should run.

GO ?= go

.PHONY: build vet test race bench bench-engines check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Concurrency-heavy packages must stay clean under the race detector:
# the sharded parallel engine is exercised with Engine forced to parallel
# even on single-core hosts (see internal/machine/engine_test.go), and the
# serving stack runs concurrent compile->simulate round trips.
race:
	$(GO) test -race ./internal/machine/... ./internal/core/... ./internal/server/... ./internal/pool/...

bench:
	$(GO) test -bench . -benchtime 10x -run '^$$' ./...

# Serial-vs-parallel host engine comparison plus BENCH_results.json.
bench-engines:
	$(GO) test -bench 'BenchmarkLargeArray|BenchmarkExecEngines' -benchtime 10x -run '^$$' . ./internal/machine/
	$(GO) run ./cmd/ascbench -exp T1 >/dev/null

check: build vet test race
