# Developer entry points. `make check` is what CI should run.

GO ?= go

.PHONY: build test race bench bench-engines check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The execution-engine packages must stay clean under the race detector:
# the sharded parallel engine is exercised with Engine forced to parallel
# even on single-core hosts (see internal/machine/engine_test.go).
race:
	$(GO) test -race ./internal/machine/... ./internal/core/...

bench:
	$(GO) test -bench . -benchtime 10x -run '^$$' ./...

# Serial-vs-parallel host engine comparison plus BENCH_results.json.
bench-engines:
	$(GO) test -bench 'BenchmarkLargeArray|BenchmarkExecEngines' -benchtime 10x -run '^$$' . ./internal/machine/
	$(GO) run ./cmd/ascbench -exp T1 >/dev/null

check: build test race
