# Developer entry points. `make check` is what CI should run.

GO ?= go

.PHONY: build vet test race bench bench-engines obs-demo fleet-smoke trace-demo apicheck apiupdate hotpath-lint check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Concurrency-heavy packages must stay clean under the race detector:
# the sharded parallel engine is exercised with Engine forced to parallel
# even on single-core hosts (see internal/machine/engine_test.go), and the
# serving stack runs concurrent compile->simulate round trips.
race:
	$(GO) test -race ./internal/machine/... ./internal/core/... ./internal/server/... ./internal/pool/... ./internal/obs/... ./internal/gateway/... ./internal/migrate/... ./client/...

bench:
	$(GO) test -bench . -benchtime 10x -run '^$$' ./...

# Boot ascd, push three jobs through it, and print the Prometheus scrape:
# the fastest way to see the simulation-depth metrics move.
obs-demo:
	$(GO) build -o /tmp/ascd-demo ./cmd/ascd
	@/tmp/ascd-demo -addr 127.0.0.1:18642 -log-level warn & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in 1 2 3; do \
	  until curl -sf http://127.0.0.1:18642/healthz >/dev/null; do sleep 0.1; done; \
	  curl -s http://127.0.0.1:18642/v1/run -d '{"ascl": "parallel v = pread(0); write(0, sumval(v));", "config": {"pes": 4, "width": 32}, "localMem": [[1],[2],[3],[4]], "dumpScalar": 1}' >/dev/null; \
	done; \
	echo "--- GET /metrics ---"; \
	curl -s http://127.0.0.1:18642/metrics

# Distributed-tier smoke: 1 ascgw + 2 ascd on loopback, one traced batch
# whose stitched trace must carry spans from both tiers, then mixed
# run/batch traffic through the gateway with one backend killed
# mid-stream. Asserts no transport errors and no non-shed failures reach
# the client — only successes or 429/503 with Retry-After — and that the
# fleet /metrics merge stays well-formed. See scripts/fleet_smoke.sh.
fleet-smoke:
	sh scripts/fleet_smoke.sh

# Distributed-tracing demo: boot a loopback fleet, run one traced batch,
# and pretty-print the stitched fleet-wide waterfall plus the exemplars
# that reference it. See scripts/trace_demo.sh and docs/OBSERVABILITY.md.
trace-demo:
	sh scripts/trace_demo.sh

# Serial-vs-parallel host engine comparison plus BENCH_results.json.
bench-engines:
	$(GO) test -bench 'BenchmarkLargeArray|BenchmarkExecEngines' -benchtime 10x -run '^$$' . ./internal/machine/
	$(GO) run ./cmd/ascbench -exp T1 >/dev/null

# API surface guard: the exported surface of the public packages (repro
# and repro/client), as rendered by `go doc -all`, must match the golden
# files under docs/api/. A diff here means the v1 contract moved — see
# docs/API.md. After an intentional, additive change, refresh the goldens
# with `make apiupdate` and include them in the same commit.
apicheck:
	@$(GO) doc -all . > /tmp/asc-apicheck-repro.txt
	@$(GO) doc -all ./client > /tmp/asc-apicheck-client.txt
	@diff -u docs/api/repro.txt /tmp/asc-apicheck-repro.txt || \
	  { echo "apicheck: package repro surface drifted; run 'make apiupdate' if intentional"; exit 1; }
	@diff -u docs/api/client.txt /tmp/asc-apicheck-client.txt || \
	  { echo "apicheck: package repro/client surface drifted; run 'make apiupdate' if intentional"; exit 1; }
	@dep=$$(grep -c 'Deprecated:' /tmp/asc-apicheck-client.txt); \
	if [ "$$dep" -gt 2 ]; then \
	  echo "apicheck: $$dep Deprecated markers in repro/client; the deprecated surface is frozen at 2 (Client.BaseURL, Client.HTTPClient) — extend the live API instead"; exit 1; \
	fi
	@echo "apicheck: exported API matches docs/api goldens"

apiupdate:
	@mkdir -p docs/api
	$(GO) doc -all . > docs/api/repro.txt
	$(GO) doc -all ./client > docs/api/client.txt

# Decode-plane guard: the per-cycle paths must consume pre-decoded
# micro-ops only. An `.Info()` table lookup or a scalarALUOp/parallelALUOp
# translation reappearing in these files means someone reintroduced
# per-exec decode work that DecodeProgram already paid for once.
# internal/machine/ref.go (the retained reference interpreter) and the
# Inst-based Timeline renderer are deliberately outside the lint set.
HOTPATH_FILES = internal/machine/machine.go internal/machine/engine.go \
	internal/cu/cu.go internal/pipeline/pipeline.go \
	internal/pipeline/scoreboard.go internal/core/core.go \
	internal/machine/gang.go internal/core/gang.go \
	internal/isa/blocks.go internal/machine/execblock.go \
	internal/core/block.go internal/core/gangblock.go

hotpath-lint:
	@if grep -nE '\.Info\(\)|scalarALUOp|parallelALUOp' $(HOTPATH_FILES); then \
	  echo "hotpath-lint: per-exec decode work found in a per-cycle path (use the decoded micro-op fields)"; exit 1; \
	else \
	  echo "hotpath-lint: per-cycle paths are decode-free"; \
	fi

check: build vet test race apicheck hotpath-lint
