// asclc compiles ASCL (the associative data-parallel language) to MTASC
// assembly, and optionally runs it.
//
// Usage:
//
//	asclc prog.ascl              # print the generated assembly
//	asclc -run [-pes N] prog.ascl  # compile and simulate, dumping memory
package main

import (
	"flag"
	"fmt"
	"os"

	asc "repro"
)

func main() {
	runIt := flag.Bool("run", false, "simulate after compiling")
	pes := flag.Int("pes", 16, "processing elements (with -run)")
	threads := flag.Int("threads", 16, "hardware threads (with -run)")
	width := flag.Uint("width", 16, "data width (with -run)")
	dump := flag.Int("dump", 8, "scalar memory words to dump (with -run)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asclc [-run] [-pes N] prog.ascl")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, asmText, err := asc.CompileASCL(string(src))
	if err != nil {
		fatal(err)
	}
	if !*runIt {
		fmt.Print(asmText)
		return
	}
	proc, err := asc.New(asc.Config{PEs: *pes, Threads: *threads, Width: *width}, prog)
	if err != nil {
		fatal(err)
	}
	stats, err := proc.Run(50_000_000)
	if err != nil {
		fatal(err)
	}
	fmt.Print(asc.FormatStats(stats))
	fmt.Println("scalar memory:")
	for i := 0; i < *dump; i++ {
		fmt.Printf("  [%3d] %d\n", i, proc.ScalarMem(i))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asclc:", err)
	os.Exit(1)
}
