// ascasm assembles MTASC assembly source into binary instruction words.
//
// Usage:
//
//	ascasm [-hex out.hex] [-q] prog.s
//
// With no flags it prints a disassembly listing (addresses, encodings,
// labels) to stdout. -hex writes one 8-digit hex word per line, the format
// the hardware prototype's memory initialization files use.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
)

func main() {
	hexOut := flag.String("hex", "", "write hex words to this file")
	quiet := flag.Bool("q", false, "suppress the listing")
	isadoc := flag.Bool("isadoc", false, "print the instruction-set reference (Markdown) and exit")
	flag.Parse()
	if *isadoc {
		fmt.Print(isa.Reference())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ascasm [-hex out.hex] [-q] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Print(asm.Disassemble(prog))
		if len(prog.Data) > 0 {
			fmt.Printf("data segment: %d words\n", len(prog.Data))
		}
	}
	if *hexOut != "" {
		var b strings.Builder
		for _, w := range prog.Words {
			fmt.Fprintf(&b, "%08x\n", w)
		}
		if err := os.WriteFile(*hexOut, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d words to %s\n", len(prog.Words), *hexOut)
	}
}
