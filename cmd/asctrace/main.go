// asctrace pretty-prints distributed traces captured by ascd and ascgw as
// text waterfalls: one line per span, indented by parent, with a duration
// bar, offsets, attributes, and errors. Point it at a /debug/traces
// endpoint (the gateway's stitches both tiers into one tree when given
// ?trace=<id>), a saved JSON dump, or stdin.
//
// Usage:
//
//	asctrace [flags] [SOURCE]
//
//	SOURCE            a /debug/traces URL (http:// or https://), a file
//	                  path, or "-" for stdin (default "-")
//	-trace ID         fetch/show only this trace id (appended to URL
//	                  sources as ?trace=<id>, filtered locally otherwise)
//	-error            show only errored traces
//	-min-ms F         show only traces at least this long
//
// Examples:
//
//	asctrace http://localhost:8641/debug/traces            # newest traces
//	asctrace -trace 4bf9...4736 http://localhost:8641/debug/traces
//	curl -s localhost:8642/debug/traces | asctrace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"repro/internal/dtrace"
)

func main() {
	traceID := flag.String("trace", "", "show only this trace id")
	errorOnly := flag.Bool("error", false, "show only errored traces")
	minMs := flag.Float64("min-ms", 0, "show only traces at least this many milliseconds long")
	flag.Parse()
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: asctrace [flags] [URL|FILE|-]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src := "-"
	if flag.NArg() == 1 {
		src = flag.Arg(0)
	}

	data, err := read(src, *traceID)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asctrace: %v\n", err)
		os.Exit(1)
	}
	var dump dtrace.TraceDump
	if err := json.Unmarshal(data, &dump); err != nil {
		fmt.Fprintf(os.Stderr, "asctrace: decoding trace dump: %v\n", err)
		os.Exit(1)
	}

	shown := 0
	for _, t := range dump.Traces {
		if t == nil {
			continue
		}
		if *traceID != "" && t.TraceID != *traceID {
			continue
		}
		if *errorOnly && !t.Error {
			continue
		}
		if t.DurationMs < *minMs {
			continue
		}
		if shown > 0 {
			fmt.Println()
		}
		fmt.Print(dtrace.Waterfall(t))
		shown++
	}
	if shown == 0 {
		fmt.Println("no matching traces")
		os.Exit(1)
	}
}

// read loads the trace dump from a URL, a file, or stdin. URL sources get
// the trace filter pushed server-side so a gateway source stitches the
// fleet-wide trace instead of listing only its own half.
func read(src, traceID string) ([]byte, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		u := src
		if traceID != "" && !strings.Contains(u, "trace=") {
			sep := "?"
			if strings.Contains(u, "?") {
				sep = "&"
			}
			u += sep + "trace=" + url.QueryEscape(traceID)
		}
		hc := &http.Client{Timeout: 30 * time.Second}
		resp, err := hc.Get(u)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(data)))
		}
		return data, nil
	}
	if src == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(src)
}
