// ascsim runs an MTASC assembly program on the cycle-accurate simulator.
//
// Usage:
//
//	ascsim [flags] prog.s
//
//	-pes N        number of processing elements (default 16)
//	-threads N    hardware thread contexts (default 16)
//	-width N      data width in bits: 8, 16, 32 (default 8)
//	-arity K      broadcast tree arity (default 4)
//	-seqmul       use the sequential multiplier
//	-fixed        fixed-priority scheduler instead of rotating
//	-max N        cycle limit (default 10,000,000)
//	-diagram N    print the pipeline diagram of the last N instructions
//	-dump N       print the first N words of scalar data memory at exit
//	-describe     print the machine organization before running
//	-data FILE    load PE local memory: one line per PE, space-separated
//	              integers (decimal or 0x hex)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	asc "repro"
)

// loadDataFile parses a PE local-memory image: line i holds PE i's words.
// A file with more lines than the machine has PEs is an error — silently
// dropping rows would hide a data/config mismatch.
func loadDataFile(path string, pes int) ([][]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows [][]int64
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fieldsRaw := strings.Fields(strings.TrimSpace(sc.Text()))
		row := make([]int64, 0, len(fieldsRaw))
		for _, tok := range fieldsRaw {
			v, err := strconv.ParseInt(tok, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad value %q", path, lineNo, tok)
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	if sc.Err() != nil {
		return nil, sc.Err()
	}
	if len(rows) > pes {
		return nil, fmt.Errorf("%s: %d data lines but the machine has %d PEs", path, len(rows), pes)
	}
	return rows, nil
}

func main() {
	pes := flag.Int("pes", 16, "processing elements")
	threads := flag.Int("threads", 16, "hardware threads")
	width := flag.Uint("width", 8, "data width in bits")
	arity := flag.Int("arity", 4, "broadcast tree arity")
	seqMul := flag.Bool("seqmul", false, "sequential multiplier")
	fixed := flag.Bool("fixed", false, "fixed-priority scheduler")
	maxCycles := flag.Int64("max", 10_000_000, "cycle limit")
	diagram := flag.Int("diagram", 0, "print pipeline diagram of last N instructions")
	dump := flag.Int("dump", 0, "dump first N scalar memory words")
	describe := flag.Bool("describe", false, "print the machine organization")
	dataFile := flag.String("data", "", "PE local memory image (one line per PE)")
	smt := flag.Bool("smt", false, "two-way SMT (dual issue)")
	vcdOut := flag.String("vcd", "", "write a VCD waveform of the run to this file (implies tracing)")
	interactive := flag.Bool("i", false, "interactive debugger (step, breakpoints, inspection)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ascsim [flags] prog.s")
		flag.PrintDefaults()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asc.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	cfg := asc.Config{
		PEs: *pes, Threads: *threads, Width: *width, Arity: *arity,
		SeqMul: *seqMul, FixedPriority: *fixed, SMT: *smt,
	}
	if *diagram > 0 {
		cfg.TraceDepth = *diagram
	}
	if *vcdOut != "" || *interactive {
		cfg.TraceDepth = -1
	}
	proc, err := asc.New(cfg, prog)
	if err != nil {
		fatal(err)
	}
	if *dataFile != "" {
		rows, err := loadDataFile(*dataFile, *pes)
		if err != nil {
			fatal(err)
		}
		if err := proc.LoadLocalMem(rows); err != nil {
			fatal(err)
		}
	}
	if *describe {
		fmt.Print(proc.Describe())
	}
	if *interactive {
		if err := proc.Debug(os.Stdin, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	stats, err := proc.Run(*maxCycles)
	if err != nil {
		fatal(err)
	}
	fmt.Print(asc.FormatStats(stats))
	if *diagram > 0 {
		fmt.Println("\npipeline diagram:")
		fmt.Print(proc.PipelineDiagram())
	}
	if *vcdOut != "" {
		if err := os.WriteFile(*vcdOut, []byte(proc.VCD()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote waveform to %s\n", *vcdOut)
	}
	if *dump > 0 {
		fmt.Println("\nscalar memory:")
		for i := 0; i < *dump; i++ {
			fmt.Printf("  [%3d] %d\n", i, proc.ScalarMem(i))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ascsim:", err)
	os.Exit(1)
}
