package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeData(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadDataFileParsesDecimalAndHex(t *testing.T) {
	path := writeData(t, "1 2 3\n0x10 -5\n\n7\n")
	rows, err := loadDataFile(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{1, 2, 3}, {16, -5}, {}, {7}}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for i := range want {
		if len(rows[i]) != len(want[i]) {
			t.Fatalf("row %d has %d words, want %d", i, len(rows[i]), len(want[i]))
		}
		for j := range want[i] {
			if rows[i][j] != want[i][j] {
				t.Errorf("row %d word %d = %d, want %d", i, j, rows[i][j], want[i][j])
			}
		}
	}
}

func TestLoadDataFileBadToken(t *testing.T) {
	path := writeData(t, "1 2\n3 four 5\n")
	_, err := loadDataFile(path, 16)
	if err == nil {
		t.Fatal("expected an error for a non-numeric token")
	}
	msg := err.Error()
	if !strings.Contains(msg, `bad value "four"`) || !strings.Contains(msg, ":2:") {
		t.Errorf("error %q should name the bad token and its line", msg)
	}
}

func TestLoadDataFileTooManyRows(t *testing.T) {
	path := writeData(t, "1\n2\n3\n4\n5\n")
	_, err := loadDataFile(path, 4)
	if err == nil {
		t.Fatal("expected an error for more rows than PEs")
	}
	if msg := err.Error(); !strings.Contains(msg, "5 data lines") || !strings.Contains(msg, "4 PEs") {
		t.Errorf("error %q should report the line/PE mismatch", msg)
	}
	// Exactly matching or fewer rows is fine.
	if _, err := loadDataFile(path, 5); err != nil {
		t.Errorf("5 rows on 5 PEs should load: %v", err)
	}
}

func TestLoadDataFileMissing(t *testing.T) {
	if _, err := loadDataFile(filepath.Join(t.TempDir(), "absent.txt"), 4); err == nil {
		t.Error("expected an error for a missing file")
	}
}
