// ascd is the MTASC simulation-as-a-service daemon: it serves
// compile-and-simulate jobs over HTTP/JSON from a bounded work queue,
// executing them on a pool of warm, recyclable simulator machines.
//
// Usage:
//
//	ascd [flags]
//
//	-addr HOST:PORT   listen address (default :8642)
//	-workers N        concurrent simulations (default: host CPUs)
//	-queue N          bounded queue depth; beyond it submissions get 429
//	-pool-idle N      warm machines kept between requests (default 2*workers)
//	-max-cycles N     hard per-request cycle cap
//	-timeout D        default per-request wall-clock limit
//	-max-timeout D    cap on requested wall-clock limits
//	-drain-timeout D  how long shutdown waits for in-flight jobs
//	-max-body N       request body size cap in bytes
//
// Endpoints: POST /v1/run, GET /metrics, GET /healthz. See docs/SERVER.md
// for the API schema and examples. SIGINT/SIGTERM trigger a graceful
// shutdown that stops admission (503) and drains queued and in-flight jobs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8642", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = host CPUs)")
	queue := flag.Int("queue", 64, "job queue depth")
	poolIdle := flag.Int("pool-idle", 0, "warm machines kept idle (0 = 2*workers)")
	maxCycles := flag.Int64("max-cycles", 100_000_000, "per-request cycle cap")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request wall-clock limit")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "cap on requested wall-clock limits")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown drain budget")
	maxBody := flag.Int64("max-body", 8<<20, "request body cap in bytes")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: ascd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	core := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		PoolIdle:       *poolIdle,
		MaxCycles:      *maxCycles,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxBodyBytes:   *maxBody,
	})
	hs := &http.Server{
		Addr:    *addr,
		Handler: core.Handler(),
		// Slow-client guards: a stalled peer must not pin a connection
		// goroutine forever (slowloris). No WriteTimeout — responses
		// legitimately take up to the simulation wall-clock limit.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("ascd: listening on %s", *addr)
		errCh <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("ascd: %v", err)
	case s := <-sig:
		log.Printf("ascd: %v: draining (budget %v)", s, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the job queue first so handlers waiting on results complete,
	// then close the HTTP side; new submissions get 503 throughout.
	if err := core.Shutdown(ctx); err != nil {
		log.Printf("ascd: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("ascd: http shutdown: %v", err)
	}
	log.Print("ascd: drained, bye")
}
