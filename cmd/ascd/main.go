// ascd is the MTASC simulation-as-a-service daemon: it serves
// compile-and-simulate jobs over HTTP/JSON from a bounded work queue,
// executing them on a pool of warm, recyclable simulator machines.
//
// Usage:
//
//	ascd [flags]
//
//	-addr HOST:PORT   listen address (default :8642)
//	-workers N        concurrent simulations (default: host CPUs)
//	-queue N          bounded queue depth; beyond it submissions get 429
//	-pool-idle N      warm machines kept between requests (default 2*workers)
//	-max-cycles N     hard per-request cycle cap
//	-timeout D        default per-request wall-clock limit
//	-max-timeout D    cap on requested wall-clock limits
//	-drain-timeout D  how long shutdown waits for in-flight jobs
//	-max-body N       request body size cap in bytes
//	-trace-depth N    instruction records retained for "trace": true jobs
//	-batch-max-jobs N jobs accepted in one POST /v1/batch
//	-batch-concurrency N
//	                  batch sub-jobs executing at once (default: workers)
//	-program-cache-size N
//	                  compiled programs kept in the content-addressed
//	                  cache (repeat submissions skip the compiler;
//	                  negative disables)
//	-gang-min-jobs N  minimum same-program batch jobs executed as one
//	                  lockstep gang (negative disables ganging)
//	-session-max-live N
//	                  resumable sessions executing at once in the session
//	                  lane (default: workers)
//	-session-retain N parked session records (suspended envelopes and
//	                  completed outcomes) kept for export (default 1024)
//	-session-drain-wait D
//	                  how long POST /v1/admin/drain waits for running
//	                  sessions to reach a checkpoint (default 10s)
//	-trace-sample F   deterministic head-sampling rate for distributed
//	                  traces in [0,1] (default 0: keep only errored, slow,
//	                  or caller-flagged traces)
//	-trace-slow D     always keep traces at least this slow (default 1s)
//	-trace-ring N     finished traces retained for GET /debug/traces
//	                  (default 256; negative disables tracing)
//	-log-level L      debug, info, warn, or error (default info)
//	-log-format F     text or json (default text)
//	-debug-addr A     optional diagnostics listener: net/http/pprof plus
//	                  Go runtime gauges at /metrics (off when empty)
//
// Endpoints: POST /v1/run, POST /v1/batch, POST /v1/sessions,
// GET/POST /v1/sessions/{id}[/resume|/checkpoint], POST /v1/admin/drain,
// GET /metrics (Prometheus text
// exposition; JSON via Accept: application/json or ?format=json),
// GET /healthz, GET /debug/traces (retained distributed traces as JSON).
// See docs/SERVER.md for the API schema, docs/API.md for the v1 stability
// contract, and docs/OBSERVABILITY.md for the metric catalog, tracing,
// log fields, and pprof usage. SIGINT/SIGTERM trigger a
// graceful shutdown that stops admission (503) and drains queued and
// in-flight jobs, batches included.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8642", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = host CPUs)")
	queue := flag.Int("queue", 64, "job queue depth")
	poolIdle := flag.Int("pool-idle", 0, "warm machines kept idle (0 = 2*workers)")
	maxCycles := flag.Int64("max-cycles", 100_000_000, "per-request cycle cap")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request wall-clock limit")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "cap on requested wall-clock limits")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown drain budget")
	maxBody := flag.Int64("max-body", 8<<20, "request body cap in bytes")
	traceDepth := flag.Int("trace-depth", 512, "instruction records retained for trace-enabled jobs")
	batchMaxJobs := flag.Int("batch-max-jobs", 64, "jobs accepted in one POST /v1/batch")
	batchConcurrency := flag.Int("batch-concurrency", 0, "batch sub-jobs executing at once (0 = workers)")
	programCacheSize := flag.Int("program-cache-size", 128, "compiled programs kept in the content-addressed cache (negative = off)")
	gangMinJobs := flag.Int("gang-min-jobs", 0, "minimum same-program batch jobs ganged into one lockstep run (0 = default 2, negative = off)")
	sessionMaxLive := flag.Int("session-max-live", 0, "resumable sessions executing at once (0 = workers)")
	sessionRetain := flag.Int("session-retain", 1024, "parked session records kept for export")
	sessionDrainWait := flag.Duration("session-drain-wait", 10*time.Second, "drain budget for running sessions to reach a checkpoint")
	traceSample := flag.Float64("trace-sample", 0, "head-sampling rate for distributed traces in [0,1]")
	traceSlow := flag.Duration("trace-slow", time.Second, "always keep traces at least this slow")
	traceRing := flag.Int("trace-ring", 256, "finished traces retained for /debug/traces (negative = off)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	debugAddr := flag.String("debug-addr", "", "diagnostics listener (pprof + runtime metrics); empty = off")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: ascd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ascd: %v\n", err)
		os.Exit(2)
	}

	core := server.New(server.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		PoolIdle:         *poolIdle,
		MaxCycles:        *maxCycles,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		MaxBodyBytes:     *maxBody,
		TraceDepth:       *traceDepth,
		BatchMaxJobs:     *batchMaxJobs,
		BatchConcurrency: *batchConcurrency,
		ProgramCacheSize: *programCacheSize,
		GangMinJobs:      *gangMinJobs,
		SessionMaxLive:   *sessionMaxLive,
		SessionRetain:    *sessionRetain,
		SessionDrainWait: *sessionDrainWait,
		TraceSample:      *traceSample,
		TraceSlow:        *traceSlow,
		TraceRing:        *traceRing,
		Logger:           logger,
	})
	hs := &http.Server{
		Addr:    *addr,
		Handler: core.Handler(),
		// Slow-client guards: a stalled peer must not pin a connection
		// goroutine forever (slowloris). No WriteTimeout — responses
		// legitimately take up to the simulation wall-clock limit.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	if *debugAddr != "" {
		go runDebugListener(*debugAddr, logger)
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errCh <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		logger.Error("serve failed", "error", err.Error())
		os.Exit(1)
	case s := <-sig:
		logger.Info("draining", "signal", s.String(), "budget", drainTimeout.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the job queue first so handlers waiting on results complete,
	// then close the HTTP side; new submissions get 503 throughout.
	if err := core.Shutdown(ctx); err != nil {
		logger.Error("drain incomplete", "error", err.Error())
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("http shutdown", "error", err.Error())
	}
	logger.Info("drained, bye")
}

// buildLogger assembles the slog handler from the -log-level/-log-format
// flags, writing to stderr.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q: want text or json", format)
	}
}

// runDebugListener serves the opt-in diagnostics surface on its own
// address, kept off the public API listener: net/http/pprof under
// /debug/pprof/ and Go runtime gauges (goroutines, heap, GC) in
// Prometheus format at /metrics.
func runDebugListener(addr string, logger *slog.Logger) {
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("debug listener", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("debug listener failed", "error", err.Error())
	}
}
