package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"runtime"
	"time"

	"repro/client"
	"repro/internal/gateway"
	"repro/internal/server"
)

// gatewayBenches measures the fleet tier's fan-out: one mixed batch (two
// programs interleaved) pushed through an ascgw fronting two ascd
// backends, against the same batch on a single direct ascd. The gateway
// splits the batch by program digest and routes each group to its ring
// owner, so the two backends compile once each and gang their own
// group — the scenario records how much routing overhead the tier adds
// (or hides, once the groups execute on disjoint nodes).
func gatewayBenches() []benchResult {
	const jobs = 32
	const reps = 5
	mkJob := func(pes int) client.RunRequest {
		req := client.RunRequest{
			ASCL:       "parallel v = pread(0); write(0, sumval(v));",
			Config:     client.MachineConfig{PEs: pes, Width: 32},
			LocalMem:   make([][]int64, pes),
			DumpScalar: 1,
		}
		for i := range req.LocalMem {
			req.LocalMem[i] = []int64{int64(i + 1)}
		}
		return req
	}
	// Two digest groups interleaved: the splitter has to regroup them.
	breq := client.BatchRequest{Jobs: make([]client.RunRequest, jobs)}
	for i := range breq.Jobs {
		if i%2 == 0 {
			breq.Jobs[i] = mkJob(16)
		} else {
			breq.Jobs[i] = mkJob(32)
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > 2 {
		workers /= 2 // two backends share the host
	}
	var nodes []*server.Server
	var nodeHS []*httptest.Server
	var backends []string
	for i := 0; i < 2; i++ {
		s := server.New(server.Config{Workers: workers})
		hs := httptest.NewServer(s.Handler())
		nodes, nodeHS, backends = append(nodes, s), append(nodeHS, hs), append(backends, hs.URL)
	}
	direct := server.New(server.Config{Workers: runtime.GOMAXPROCS(0)})
	directHS := httptest.NewServer(direct.Handler())

	row := benchResult{Name: fmt.Sprintf("serving/gateway-fanout/jobs=%d", jobs)}
	gw, err := gateway.New(gateway.Config{
		Backends: backends,
		Logger:   slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		row.Error = err.Error()
		return []benchResult{row}
	}
	gwHS := httptest.NewServer(gw.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		gw.Shutdown(ctx)
		gwHS.Close()
		direct.Shutdown(ctx)
		directHS.Close()
		for i, s := range nodes {
			s.Shutdown(ctx)
			nodeHS[i].Close()
		}
	}()

	runBatch := func(c *client.Client) ([]int64, error) {
		res, err := c.RunBatch(context.Background(), breq)
		if err != nil {
			return nil, err
		}
		words := make([]int64, len(res.Jobs))
		for i, j := range res.Jobs {
			if j.Result == nil {
				return nil, fmt.Errorf("batch job %d failed: %s", i, j.Error)
			}
			words[i] = j.Result.ScalarMem[0]
		}
		return words, nil
	}
	cg, cd := client.New(gwHS.URL), client.New(directHS.URL)

	// Warm both paths (program caches, warm pools), and take the direct
	// run as the correctness baseline.
	want, derr := runBatch(cd)
	if _, gerr := runBatch(cg); derr != nil || gerr != nil {
		row.Error = fmt.Sprintf("warm-up: direct=%v gateway=%v", derr, gerr)
		return []benchResult{row}
	}
	check := func(words []int64, err error) error {
		if err != nil {
			return err
		}
		for i, w := range words {
			if w != want[i] {
				return fmt.Errorf("job %d: gateway result %d diverges from direct %d", i, w, want[i])
			}
		}
		return nil
	}

	var gwNs, directNs float64
	for rep := 0; rep < reps; rep++ {
		if r := measure(1, func() error { w, err := runBatch(cg); return check(w, err) }); r.Error != "" {
			row.Error = r.Error
		} else if gwNs == 0 || r.NsPerOp < gwNs {
			gwNs, row.AllocsPerOp, row.BytesPerOp = r.NsPerOp, r.AllocsPerOp, r.BytesPerOp
		}
		if r := measure(1, func() error { _, err := runBatch(cd); return err }); r.Error != "" {
			row.Error = r.Error
		} else if directNs == 0 || r.NsPerOp < directNs {
			directNs = r.NsPerOp
		}
	}
	row.NsPerOp = gwNs
	row.Metrics = map[string]float64{
		"jobs": jobs, "reps": reps, "backends": 2,
		"ns-per-job":         gwNs / jobs,
		"direct-ns-per-job":  directNs / jobs,
		"overhead-vs-direct": gwNs / directNs,
		"bit-identical-runs": reps,
	}
	return []benchResult{row}
}
