// ascbench regenerates every table and figure of the paper (and the derived
// experiments that quantify its prose claims) on the simulator and the
// calibrated FPGA model. See DESIGN.md section 5 for the experiment index
// and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Besides the formatted tables, every run writes a machine-readable
// BENCH_results.json (name, ns/op, allocs/op, and model metrics for the
// host-engine comparison) so performance can be tracked across commits;
// -benchout changes the path, -benchout "" disables it.
//
// Usage:
//
//	ascbench            # run everything
//	ascbench -exp T1    # one experiment: T1, F1, F2, F3, D1 ... D13
//	ascbench -list      # list experiment ids
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/client"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/progs"
	"repro/internal/server"
)

// benchResult is one row of BENCH_results.json.
type benchResult struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	Error       string             `json:"error,omitempty"`
}

// measure times f and reports per-op wall time and heap allocation deltas
// (whole-process Mallocs/TotalAlloc, the same counters testing.B uses).
func measure(ops int, f func() error) (r benchResult) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var err error
	for i := 0; i < ops && err == nil; i++ {
		err = f()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := float64(ops)
	r.NsPerOp = float64(elapsed.Nanoseconds()) / n
	r.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / n
	r.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / n
	if err != nil {
		r.Error = err.Error()
	}
	return r
}

// engineBenches compares the serial and sharded host engines on the
// multithreaded reduction kernel at wide PE counts, recording model metrics
// (cycles, IPC) alongside host-side cost. Engines must agree on the model
// metrics exactly; ns/op is the host speedup trajectory.
func engineBenches() []benchResult {
	var out []benchResult
	for _, pes := range []int{256, 1024} {
		ins := progs.MTReduction(pes, 8, 20)
		prog, err := asm.Assemble(ins.Source)
		if err != nil {
			out = append(out, benchResult{Name: "engine/assemble", Error: err.Error()})
			continue
		}
		for _, engine := range []machine.Engine{machine.EngineSerial, machine.EngineParallel} {
			var last core.Stats
			r := measure(3, func() error {
				mcfg := ins.MachineConfig(pes, 8)
				mcfg.Engine = engine
				p, err := core.New(core.Config{Machine: mcfg}, prog.Insts)
				if err != nil {
					return err
				}
				defer p.Machine().Close()
				if err := p.Machine().LoadLocalMem(ins.LocalMem); err != nil {
					return err
				}
				if err := p.Machine().LoadScalarMem(ins.ScalarMem); err != nil {
					return err
				}
				stats, err := p.Run(0)
				if err != nil {
					return err
				}
				if err := ins.Check(p.Machine()); err != nil {
					return err
				}
				last = stats
				return nil
			})
			r.Name = fmt.Sprintf("engine/mt-reduction/pes=%d/%v", pes, engine)
			r.Metrics = map[string]float64{
				"model-cycles": float64(last.Cycles),
				"model-IPC":    last.IPC(),
				"gomaxprocs":   float64(runtime.GOMAXPROCS(0)),
			}
			addStallMetrics(r.Metrics, last)
			out = append(out, r)
		}
	}
	return out
}

// addStallMetrics folds the paper-relevant hazard counters of a run into
// a benchmark row: stall and idle cycles by hazard kind (the b+r
// reduction hazard the multithreading is there to hide), plus the
// front-end and contention totals. These land in BENCH_results.json so
// the bench trajectory tracks the model's behavior, not just wall-clock.
func addStallMetrics(m map[string]float64, s core.Stats) {
	for k, v := range s.StallByKind {
		m["stall-cycles/"+k.String()] = float64(v)
	}
	for k, v := range s.IdleByKind {
		m["idle-cycles/"+k.String()] = float64(v)
	}
	m["idle-cycles"] = float64(s.IdleCycles)
	m["contention"] = float64(s.Contention)
	m["fetches"] = float64(s.Fetches)
	m["flushes"] = float64(s.Flushes)
}

// coreBenches times the cycle-accurate model's per-cycle loop itself, the
// hot path the decode plane exists for. Two scenarios bracket it:
//
//   - core/cycle-loop: a paper-scale 16-PE machine running the
//     multithreaded reduction kernel on 16 threads. PE-array work is tiny,
//     so almost all host time is scheduling: per-thread ready checks,
//     scoreboard lookups, and instruction dispatch — decode overhead in
//     its purest form.
//   - core/large-array: the same kernel on a 4096-PE array, where the
//     broadcast/reduction loops carry real data weight and decode cost
//     must stay invisible next to them.
func coreBenches() []benchResult {
	var out []benchResult
	cases := []struct {
		name    string
		pes     int
		threads int
		iters   int
		engine  machine.Engine
		ops     int
	}{
		{"core/cycle-loop/pes=16/threads=16", 16, 16, 200, machine.EngineSerial, 5},
		{"core/large-array/pes=4096/threads=8", 4096, 8, 20, machine.EngineSerial, 3},
	}
	for _, tc := range cases {
		ins := progs.MTReduction(tc.pes, tc.threads, tc.iters)
		prog, err := asm.Assemble(ins.Source)
		if err != nil {
			out = append(out, benchResult{Name: tc.name, Error: err.Error()})
			continue
		}
		var last core.Stats
		r := measure(tc.ops, func() error {
			mcfg := ins.MachineConfig(tc.pes, tc.threads)
			mcfg.Engine = tc.engine
			p, err := core.New(core.Config{Machine: mcfg}, prog.Insts)
			if err != nil {
				return err
			}
			defer p.Machine().Close()
			if err := p.Machine().LoadLocalMem(ins.LocalMem); err != nil {
				return err
			}
			if err := p.Machine().LoadScalarMem(ins.ScalarMem); err != nil {
				return err
			}
			stats, err := p.Run(0)
			if err != nil {
				return err
			}
			if err := ins.Check(p.Machine()); err != nil {
				return err
			}
			last = stats
			return nil
		})
		r.Name = tc.name
		r.Metrics = map[string]float64{
			"model-cycles":  float64(last.Cycles),
			"model-IPC":     last.IPC(),
			"ns-per-cycle":  r.NsPerOp / float64(last.Cycles),
			"instructions":  float64(last.Instructions),
		}
		addStallMetrics(r.Metrics, last)
		out = append(out, r)
	}
	return out
}

// blockFusionBenches is the block plane's A/B row: one associative
// search-and-fold loop — a fusible parallel ALU run, a broadcast compare
// feeding flag logic, and compare+fold/sum reduction tails, the idioms the
// fusion catalog targets — run with the block plane on and off on the same
// serial-engine machine. Timings are the min of 5 interleaved reps so
// scheduler noise hits both sides alike, and every rep cross-checks the
// two modes' statistics and terminal snapshots bit for bit: the block
// plane is only allowed to be faster, never different.
func blockFusionBenches() []benchResult {
	const reps = 5
	const pes = 16
	const src = `
	li s1, 8000        ; loop trips: long enough that the cycle loop,
	                   ; not machine construction, dominates each rep
	paddi p1, p0, 3
	addi s3, s0, 40    ; search threshold
loop:
	padd p3, p3, p1    ; fusible ALU run feeding the search below
	pcgt f1, p3, s3    ; broadcast-compare: the associative search step
	fand f2, f1, f1
	rcount s4, f1      ; compare+fold
	add s5, s5, s4     ; scalar consumer: the full b+r latency exposed
	rsum s2, p3        ; fold the values too
	add s6, s6, s2     ; and consume again (a single thread cannot hide it)
	addi s1, s1, -1
	bnez s1, loop
	sw s5, 0(s0)
	sw s6, 1(s0)
	halt
`
	onRow := benchResult{Name: "core/block-fusion/blocks=on"}
	offRow := benchResult{Name: "core/block-fusion/blocks=off"}
	prog, err := asm.Assemble(src)
	if err != nil {
		onRow.Error = err.Error()
		return []benchResult{onRow, offRow}
	}

	run := func(off bool) (core.Stats, []byte, error) {
		// Arity 2 deepens the broadcast/reduction tree: more b+r stall
		// cycles per fold for the closed form to jump over.
		cfg := core.Config{Arity: 2}
		cfg.Machine = machine.Config{PEs: pes, Threads: 1, Width: 32}
		cfg.Machine.Engine = machine.EngineSerial
		if off {
			cfg.Blocks = core.BlocksOff
		}
		p, err := core.New(cfg, prog.Insts)
		if err != nil {
			return core.Stats{}, nil, err
		}
		defer p.Machine().Close()
		stats, err := p.Run(0)
		if err != nil {
			return core.Stats{}, nil, err
		}
		return stats, p.Snapshot(), nil
	}

	best := func(row *benchResult, r benchResult) {
		if row.NsPerOp == 0 || r.NsPerOp < row.NsPerOp {
			row.NsPerOp, row.AllocsPerOp, row.BytesPerOp = r.NsPerOp, r.AllocsPerOp, r.BytesPerOp
		}
		if r.Error != "" {
			row.Error = r.Error
		}
	}
	var onStats, offStats core.Stats
	identical := 0
	for rep := 0; rep < reps; rep++ {
		var snapOn, snapOff []byte
		best(&onRow, measure(1, func() (err error) {
			onStats, snapOn, err = run(false)
			return err
		}))
		best(&offRow, measure(1, func() (err error) {
			offStats, snapOff, err = run(true)
			return err
		}))
		if onRow.Error != "" || offRow.Error != "" {
			continue
		}
		if onStats.Cycles != offStats.Cycles || onStats.Instructions != offStats.Instructions ||
			onStats.IdleCycles != offStats.IdleCycles || !bytes.Equal(snapOn, snapOff) {
			onRow.Error = fmt.Sprintf("rep %d: blocks-on run diverges from blocks-off", rep)
			continue
		}
		identical++
	}

	onRow.Metrics = map[string]float64{
		"model-cycles":       float64(onStats.Cycles),
		"model-IPC":          onStats.IPC(),
		"ns-per-cycle":       onRow.NsPerOp / float64(onStats.Cycles),
		"speedup-vs-off":     offRow.NsPerOp / onRow.NsPerOp,
		"block-dispatches":   float64(onStats.BlockDispatches),
		"bit-identical-reps": float64(identical),
	}
	addStallMetrics(onRow.Metrics, onStats)
	offRow.Metrics = map[string]float64{
		"model-cycles": float64(offStats.Cycles),
		"model-IPC":    offStats.IPC(),
		"ns-per-cycle": offRow.NsPerOp / float64(offStats.Cycles),
	}
	addStallMetrics(offRow.Metrics, offStats)
	return []benchResult{onRow, offRow}
}

// mergeBaseline annotates rows with the matching ns/op from a previous
// BENCH_results.json (ascbench -baseline old.json), recording the
// before/after trajectory of a refactor in the new file itself:
// baseline-ns-per-op is the old cost, speedup is old/new.
func mergeBaseline(rows []benchResult, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old []benchResult
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	byName := make(map[string]benchResult, len(old))
	for _, r := range old {
		byName[r.Name] = r
	}
	for i := range rows {
		prev, ok := byName[rows[i].Name]
		if !ok || prev.NsPerOp <= 0 || rows[i].NsPerOp <= 0 {
			continue
		}
		if rows[i].Metrics == nil {
			rows[i].Metrics = make(map[string]float64)
		}
		rows[i].Metrics["baseline-ns-per-op"] = prev.NsPerOp
		rows[i].Metrics["speedup"] = prev.NsPerOp / rows[i].NsPerOp
	}
	return nil
}

// batchBenches measures the serving stack's batched-throughput win: N
// identical jobs pushed one at a time through POST /v1/run versus the
// same N as a single POST /v1/batch. The batch path amortizes HTTP
// round trips and, after the first job, serves every compile from the
// content-addressed program cache — the `cache-hits` metric records how
// many of the N jobs skipped the compiler.
func batchBenches() []benchResult {
	const jobs = 32
	req := client.RunRequest{
		ASCL:       "parallel v = pread(0); write(0, sumval(v));",
		Config:     client.MachineConfig{PEs: 16, Width: 32},
		LocalMem:   make([][]int64, 16),
		DumpScalar: 1,
	}
	for i := range req.LocalMem {
		req.LocalMem[i] = []int64{int64(i + 1)}
	}

	// A fresh in-process daemon per scenario keeps the program cache and
	// machine pool cold at the start of each measurement.
	bench := func(name string, f func(c *client.Client) (hits int, err error)) benchResult {
		s := server.New(server.Config{Workers: runtime.GOMAXPROCS(0)})
		hs := httptest.NewServer(s.Handler())
		c := client.New(hs.URL)
		var hits int
		r := measure(1, func() (err error) {
			hits, err = f(c)
			return err
		})
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		s.Shutdown(ctx)
		cancel()
		hs.Close()
		r.Name = name
		r.Metrics = map[string]float64{
			"jobs":       jobs,
			"ns-per-job": r.NsPerOp / jobs,
			"cache-hits": float64(hits),
		}
		return r
	}

	out := []benchResult{
		bench(fmt.Sprintf("serving/sequential-runs/jobs=%d", jobs), func(c *client.Client) (int, error) {
			hits := 0
			for i := 0; i < jobs; i++ {
				res, err := c.Run(context.Background(), req)
				if err != nil {
					return hits, err
				}
				if res.ProgramCacheHit {
					hits++
				}
			}
			return hits, nil
		}),
		bench(fmt.Sprintf("serving/batch-run/jobs=%d", jobs), func(c *client.Client) (int, error) {
			breq := client.BatchRequest{Jobs: make([]client.RunRequest, jobs)}
			for i := range breq.Jobs {
				breq.Jobs[i] = req
			}
			res, err := c.RunBatch(context.Background(), breq)
			if err != nil {
				return 0, err
			}
			hits := 0
			for _, j := range res.Jobs {
				if j.Result == nil {
					return hits, fmt.Errorf("batch job failed: %s", j.Error)
				}
				if j.Result.ProgramCacheHit {
					hits++
				}
			}
			return hits, nil
		}),
	}
	return out
}

// gangBenches measures the cross-job lockstep win: one POST /v1/batch of N
// identical jobs executed as a gang — a single fetch/decode/issue pass over
// the shared micro-op stream driving all N jobs' state — versus the same
// batch fanned out job-per-machine (GangMinJobs disabled). Both servers run
// the same kernel; timings are the min of 5 interleaved reps so scheduler
// noise hits both sides alike, and every rep cross-checks the two modes'
// per-job memory dumps bit for bit.
func gangBenches() []benchResult {
	const jobs = 32
	const reps = 5
	// A looping reduction kernel long enough that simulation, not HTTP or
	// compilation, dominates each batch.
	req := client.RunRequest{
		Asm: `
	addi s1, s0, 2000
	paddi p1, p0, 3
loop:
	padd p2, p2, p1
	rsum s2, p2
	addi s1, s1, -1
	bnez s1, loop
	sw s2, 0(s0)
	halt
`,
		Config:     client.MachineConfig{PEs: 16, Width: 32},
		DumpScalar: 1,
	}
	breq := client.BatchRequest{Jobs: make([]client.RunRequest, jobs)}
	for i := range breq.Jobs {
		breq.Jobs[i] = req
	}

	newSrv := func(gangMin int) (*server.Server, *httptest.Server, *client.Client) {
		s := server.New(server.Config{Workers: runtime.GOMAXPROCS(0), GangMinJobs: gangMin})
		hs := httptest.NewServer(s.Handler())
		return s, hs, client.New(hs.URL)
	}
	sg, hg, cg := newSrv(0)  // ganging on (default threshold)
	sf, hf, cf := newSrv(-1) // ganging off: the fan-out baseline
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		sg.Shutdown(ctx)
		sf.Shutdown(ctx)
		hg.Close()
		hf.Close()
	}()

	runBatch := func(c *client.Client) ([]int64, error) {
		res, err := c.RunBatch(context.Background(), breq)
		if err != nil {
			return nil, err
		}
		words := make([]int64, len(res.Jobs))
		for i, j := range res.Jobs {
			if j.Result == nil {
				return nil, fmt.Errorf("batch job %d failed: %s", i, j.Error)
			}
			words[i] = j.Result.ScalarMem[0]
		}
		return words, nil
	}

	gangRow := benchResult{Name: fmt.Sprintf("serving/gang-batch/jobs=%d", jobs)}
	fanRow := benchResult{Name: fmt.Sprintf("serving/gang-fanout/jobs=%d", jobs)}
	// One warm-up batch per server fills the machine pool and program
	// cache, so the reps measure steady-state serving.
	want, gerr := runBatch(cg)
	if _, ferr := runBatch(cf); gerr != nil || ferr != nil {
		gangRow.Error = fmt.Sprintf("warm-up: gang=%v fanout=%v", gerr, ferr)
		return []benchResult{gangRow, fanRow}
	}

	best := func(row *benchResult, r benchResult) {
		if row.NsPerOp == 0 || r.NsPerOp < row.NsPerOp {
			row.NsPerOp, row.AllocsPerOp, row.BytesPerOp = r.NsPerOp, r.AllocsPerOp, r.BytesPerOp
		}
		if r.Error != "" {
			row.Error = r.Error
		}
	}
	check := func(words []int64, err error) error {
		if err != nil {
			return err
		}
		for i, w := range words {
			if w != want[i] {
				return fmt.Errorf("job %d: result %d diverges from fan-out baseline %d", i, w, want[i])
			}
		}
		return nil
	}
	for rep := 0; rep < reps; rep++ {
		best(&gangRow, measure(1, func() error { w, err := runBatch(cg); return check(w, err) }))
		best(&fanRow, measure(1, func() error { w, err := runBatch(cf); return check(w, err) }))
	}

	gangRow.Metrics = map[string]float64{
		"jobs": jobs, "reps": reps,
		"ns-per-job":         gangRow.NsPerOp / jobs,
		"speedup-vs-fanout":  fanRow.NsPerOp / gangRow.NsPerOp,
		"bit-identical-runs": float64(reps * 2),
	}
	fanRow.Metrics = map[string]float64{
		"jobs": jobs, "reps": reps,
		"ns-per-job": fanRow.NsPerOp / jobs,
	}
	return []benchResult{gangRow, fanRow}
}

func main() {
	exp := flag.String("exp", "all", "experiment id (T1, F1, F2, F3, D1..D13) or 'all'")
	list := flag.Bool("list", false, "list experiments")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array")
	benchOut := flag.String("benchout", "BENCH_results.json", "write machine-readable timings here (empty = off)")
	baseline := flag.String("baseline", "", "previous BENCH_results.json to record baseline-ns-per-op/speedup against")
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	type result struct {
		ID     string `json:"id"`
		Title  string `json:"title"`
		Output string `json:"output,omitempty"`
		Error  string `json:"error,omitempty"`
	}
	var results []result
	var bench []benchResult
	failed := false
	for _, e := range all {
		if *exp != "all" && !strings.EqualFold(*exp, e.ID) {
			continue
		}
		var out string
		br := measure(1, func() (err error) {
			out, err = e.Run()
			return err
		})
		br.Name = "experiment/" + e.ID
		bench = append(bench, br)
		r := result{ID: e.ID, Title: e.Title, Output: out}
		if br.Error != "" {
			r.Error = br.Error
			failed = true
		}
		results = append(results, r)
		if !*jsonOut {
			fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
			if r.Error != "" {
				fmt.Fprintf(os.Stderr, "%s failed: %s\n", e.ID, r.Error)
				continue
			}
			fmt.Println(out)
		}
	}
	bench = append(bench, engineBenches()...)
	bench = append(bench, coreBenches()...)
	bench = append(bench, blockFusionBenches()...)
	bench = append(bench, batchBenches()...)
	bench = append(bench, gangBenches()...)
	bench = append(bench, gatewayBenches()...)
	if *baseline != "" {
		if err := mergeBaseline(bench, *baseline); err != nil {
			fmt.Fprintf(os.Stderr, "merging baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *benchOut != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *benchOut, err)
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Printf("wrote %s (%d benchmark rows)\n", *benchOut, len(bench))
		}
	}
	if failed {
		os.Exit(1)
	}
}
