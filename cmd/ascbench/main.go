// ascbench regenerates every table and figure of the paper (and the derived
// experiments that quantify its prose claims) on the simulator and the
// calibrated FPGA model. See DESIGN.md section 5 for the experiment index
// and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	ascbench            # run everything
//	ascbench -exp T1    # one experiment: T1, F1, F2, F3, D1 ... D9
//	ascbench -list      # list experiment ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (T1, F1, F2, F3, D1..D12) or 'all'")
	list := flag.Bool("list", false, "list experiments")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array")
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	type result struct {
		ID     string `json:"id"`
		Title  string `json:"title"`
		Output string `json:"output,omitempty"`
		Error  string `json:"error,omitempty"`
	}
	var results []result
	failed := false
	for _, e := range all {
		if *exp != "all" && !strings.EqualFold(*exp, e.ID) {
			continue
		}
		out, err := e.Run()
		r := result{ID: e.ID, Title: e.Title, Output: out}
		if err != nil {
			r.Error = err.Error()
			failed = true
		}
		results = append(results, r)
		if !*jsonOut {
			fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
				continue
			}
			fmt.Println(out)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}
