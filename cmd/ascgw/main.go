// ascgw is the MTASC fleet gateway: an HTTP front tier that speaks the
// same v1 wire contract as a single ascd (docs/API.md) and routes jobs
// across a fleet of ascd backends by consistent hash of their program
// digest and machine geometry, so repeat traffic for one kernel keeps
// landing on the node whose program cache, warm pool, and gang batching
// are already hot.
//
// Usage:
//
//	ascgw -backends http://h1:8642,http://h2:8642 [flags]
//
//	-addr HOST:PORT     listen address (default :8641)
//	-backends LIST      comma-separated ascd base URLs (required)
//	-replicas N         virtual ring points per backend (default 128)
//	-load-factor C      bounded-load factor; a backend stops taking new
//	                    keys past C times the fleet-average in-flight
//	                    load (default 1.25)
//	-attempts N         distinct replicas tried before shedding (default 3)
//	-max-inflight N     run+batch calls in flight through the gateway;
//	                    beyond it submissions get 429 (default 256)
//	-max-body N         request body cap in bytes (default 32 MiB)
//	-batch-max-jobs N   jobs accepted in one gateway batch (default 256)
//	-backend-batch-max-jobs N
//	                    cap on forwarded sub-batches; must not exceed the
//	                    backends' -batch-max-jobs (default 64)
//	-health-interval D  /healthz probe interval per backend (default 2s)
//	-health-timeout D   single probe timeout (default 1s)
//	-health-failures N  consecutive probe failures to eject (default 3)
//	-health-rises N     consecutive successes to re-admit (default 2)
//	-scrape-timeout D   budget for each backend /metrics fetch during a
//	                    fleet scrape and each backend /debug/traces fetch
//	                    during trace stitching (default 2s)
//	-trace-sample F     deterministic head-sampling rate for distributed
//	                    traces in [0,1]; set the same rate on the backends
//	                    so every tier keeps the same traces (default 0)
//	-trace-slow D       always keep traces at least this slow (default 1s)
//	-trace-ring N       finished traces retained for GET /debug/traces
//	                    (default 256; negative disables tracing)
//	-max-migrations N   envelope hops tried when carrying a live session
//	                    off a draining backend before handing the
//	                    checkpoint back to the client (default 4)
//	-drain-timeout D    how long shutdown waits for in-flight requests
//	-log-level L        debug, info, warn, or error (default info)
//	-log-format F       text or json (default text)
//
// Endpoints: POST /v1/run and POST /v1/batch (routed; batches are split
// by program digest so same-program jobs reach one backend as a gangable
// group), POST /v1/sessions and GET/POST /v1/sessions/{id}[/resume]
// (resumable sessions with transparent live migration),
// POST /v1/admin/drain (checkpoint a backend's live sessions and resume
// them on ring successors), GET /metrics (fleet-wide: gateway asc_gw_* series plus every
// backend's registry, per-sample backend label by default, summed with
// ?view=fleet), GET /healthz, GET /debug/traces (with ?trace=<id> the
// gateway stitches its own spans with every backend's spans for that
// trace into one fleet-wide waterfall; ?format=waterfall renders it as
// text). See docs/SERVER.md for fleet deployment and
// docs/OBSERVABILITY.md for the asc_gw_* catalog and tracing.
// SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
)

func main() {
	addr := flag.String("addr", ":8641", "listen address")
	backends := flag.String("backends", "", "comma-separated ascd base URLs (required)")
	replicas := flag.Int("replicas", 128, "virtual ring points per backend")
	loadFactor := flag.Float64("load-factor", 1.25, "bounded-load factor")
	attempts := flag.Int("attempts", 3, "distinct replicas tried before shedding")
	maxInflight := flag.Int("max-inflight", 256, "run+batch calls in flight through the gateway")
	maxBody := flag.Int64("max-body", 32<<20, "request body cap in bytes")
	batchMaxJobs := flag.Int("batch-max-jobs", 256, "jobs accepted in one gateway batch")
	backendBatchMaxJobs := flag.Int("backend-batch-max-jobs", 64, "cap on forwarded sub-batches (match the backends' -batch-max-jobs)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "health probe interval per backend")
	healthTimeout := flag.Duration("health-timeout", time.Second, "single health probe timeout")
	healthFailures := flag.Int("health-failures", 3, "consecutive probe failures to eject a backend")
	healthRises := flag.Int("health-rises", 2, "consecutive probe successes to re-admit a backend")
	scrapeTimeout := flag.Duration("scrape-timeout", 2*time.Second, "budget for each backend /metrics or /debug/traces fetch")
	traceSample := flag.Float64("trace-sample", 0, "head-sampling rate for distributed traces in [0,1]")
	traceSlow := flag.Duration("trace-slow", time.Second, "always keep traces at least this slow")
	traceRing := flag.Int("trace-ring", 256, "finished traces retained for /debug/traces (negative = off)")
	maxMigrations := flag.Int("max-migrations", 4, "envelope hops tried per live session migration")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown drain budget")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: ascgw -backends LIST [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if strings.TrimSpace(*backends) == "" {
		fmt.Fprintln(os.Stderr, "ascgw: -backends is required (comma-separated ascd base URLs)")
		os.Exit(2)
	}

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ascgw: %v\n", err)
		os.Exit(2)
	}

	gw, err := gateway.New(gateway.Config{
		Backends:            strings.Split(*backends, ","),
		Replicas:            *replicas,
		LoadFactor:          *loadFactor,
		MaxAttempts:         *attempts,
		MaxInflight:         *maxInflight,
		MaxBodyBytes:        *maxBody,
		BatchMaxJobs:        *batchMaxJobs,
		BackendBatchMaxJobs: *backendBatchMaxJobs,
		HealthInterval:      *healthInterval,
		HealthTimeout:       *healthTimeout,
		HealthFailAfter:     *healthFailures,
		HealthRiseAfter:     *healthRises,
		ScrapeTimeout:       *scrapeTimeout,
		TraceSample:         *traceSample,
		TraceSlow:           *traceSlow,
		TraceRing:           *traceRing,
		MaxMigrations:       *maxMigrations,
		Logger:              logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ascgw: %v\n", err)
		os.Exit(2)
	}

	hs := &http.Server{
		Addr:    *addr,
		Handler: gw.Handler(),
		// Slow-client guards as on ascd; no WriteTimeout because proxied
		// responses legitimately take up to the simulation wall-clock limit.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "backends", *backends)
		errCh <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		logger.Error("serve failed", "error", err.Error())
		os.Exit(1)
	case s := <-sig:
		logger.Info("draining", "signal", s.String(), "budget", drainTimeout.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		logger.Error("drain incomplete", "error", err.Error())
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("http shutdown", "error", err.Error())
	}
	logger.Info("drained, bye")
}

// buildLogger assembles the slog handler from the -log-level/-log-format
// flags, writing to stderr.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q: want text or json", format)
	}
}
