package client_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sync"
	"testing"
	"time"

	"repro/client"
)

var traceparentRE = regexp.MustCompile(`^00-[0-9a-f]{32}-[0-9a-f]{16}-0[013]$`)

// TestRetriesReuseRequestIdentity checks that one logical call keeps one
// correlation identity across retries: a flaky server that 429s the first
// two attempts must see the same X-Request-Id and the same traceparent on
// all three, so server-side logs and traces tie the attempts together
// instead of looking like three unrelated jobs.
func TestRetriesReuseRequestIdentity(t *testing.T) {
	var mu sync.Mutex
	var ids, tps []string
	attempts := 0
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids = append(ids, r.Header.Get("X-Request-Id"))
		tps = append(tps, r.Header.Get("traceparent"))
		attempts++
		n := attempts
		mu.Unlock()
		if n <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error": "busy"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"cycles": 7}`))
	}))
	defer hs.Close()

	c := client.New(hs.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	}))
	if _, err := c.Run(context.Background(), client.RunRequest{Asm: "halt"}); err != nil {
		t.Fatal(err)
	}

	if len(ids) != 3 {
		t.Fatalf("attempts = %d, want 3", len(ids))
	}
	distinct := map[string]bool{}
	for _, id := range ids {
		if id == "" {
			t.Fatal("an attempt arrived without X-Request-Id")
		}
		distinct[id] = true
	}
	if len(distinct) != 1 {
		t.Errorf("retries used %d distinct request ids %v, want 1", len(distinct), ids)
	}
	for i, tp := range tps {
		if !traceparentRE.MatchString(tp) {
			t.Fatalf("attempt %d traceparent %q is not a valid W3C header", i+1, tp)
		}
		if tp != tps[0] {
			t.Errorf("attempt %d traceparent %q differs from first %q", i+1, tp, tps[0])
		}
	}
}

// TestSeparateCallsGetSeparateIdentities checks the identity is per logical
// call, not per client: two Run calls must not share a request id (that
// would merge unrelated jobs in server logs).
func TestSeparateCallsGetSeparateIdentities(t *testing.T) {
	var mu sync.Mutex
	var ids []string
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids = append(ids, r.Header.Get("X-Request-Id"))
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"cycles": 7}`))
	}))
	defer hs.Close()

	c := client.New(hs.URL)
	for i := 0; i < 2; i++ {
		if _, err := c.Run(context.Background(), client.RunRequest{Asm: "halt"}); err != nil {
			t.Fatal(err)
		}
	}
	if len(ids) != 2 || ids[0] == ids[1] {
		t.Errorf("two calls produced ids %v, want two distinct ids", ids)
	}
}
