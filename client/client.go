package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a thin HTTP client for an ascd daemon.
type Client struct {
	// BaseURL is the daemon address, e.g. "http://localhost:8642".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Cancellation and deadlines
	// come from the per-call context, so the zero value is usable as-is.
	HTTPClient *http.Client
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out, converting
// non-2xx statuses into *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// The client always wants the JSON views; /metrics defaults to
	// Prometheus text exposition without this.
	req.Header.Set("Accept", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		reqID := resp.Header.Get("X-Request-Id")
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return &APIError{Status: resp.StatusCode, Message: eb.Error, RequestID: reqID}
		}
		return &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(data)), RequestID: reqID}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("ascd: decoding %s response: %w", path, err)
	}
	return nil
}

// Run submits a simulation job and blocks until it completes (or ctx ends).
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunResult, error) {
	var res RunResult
	if err := c.do(ctx, http.MethodPost, "/v1/run", req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Healthz checks daemon liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches and decodes the JSON view of the serving counters. The
// daemon's /metrics endpoint defaults to Prometheus text exposition;
// the client negotiates the JSON shape via Accept plus ?format=json.
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	var m Metrics
	if err := c.do(ctx, http.MethodGet, "/metrics?format=json", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}
