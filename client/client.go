package client

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client is an HTTP client for an ascd daemon (or an ascgw gateway — the
// wire surface is identical). Build it with New and configure it with
// options.
//
// # Legacy compatibility
//
// The two exported fields below predate the options constructor and are
// the client's entire deprecated surface — it is frozen at these two, and
// `make apicheck` fails if another Deprecated field or symbol appears.
// Both keep working forever under the v1 contract: New stores its baseURL
// argument in BaseURL, and WithHTTPClient stores into HTTPClient, so
// pre-options code that reads or mutates the fields observes exactly the
// historical behavior.
type Client struct {
	// BaseURL is the daemon address, e.g. "http://localhost:8642".
	//
	// Deprecated: pass the address to New instead of mutating the field.
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	//
	// Deprecated: use WithHTTPClient.
	HTTPClient *http.Client

	timeout time.Duration
	retry   RetryPolicy
}

// Option configures a Client built by New.
type Option func(*Client)

// WithHTTPClient uses hc for transport instead of http.DefaultClient
// (custom TLS, proxies, connection pools).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.HTTPClient = hc }
}

// WithTimeout bounds each HTTP attempt's wall-clock time. It layers under
// any per-call context deadline (whichever ends first wins) and applies
// per attempt, so a retried call gets a fresh budget. Zero means no
// client-side limit beyond the context.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// RetryPolicy shapes automatic retries of temporary failures (HTTP 429
// and 503 — the daemon's backpressure and drain signals). Attempts beyond
// the first wait an exponentially growing, jittered delay, never less
// than the server's Retry-After hint, and always respect the call context.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (<= 1 disables retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms); attempt n
	// waits up to BaseDelay << (n-1), jittered uniformly over the upper
	// half of that interval.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 5s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// WithRetry retries temporary failures (429 queue-full, 503 draining)
// with exponential backoff and jitter, honoring the server's Retry-After
// hint. The zero policy disables retries (the default).
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p }
}

// New returns a client for the daemon at baseURL, configured by opts.
// With no options it behaves exactly like the historical constructor:
// default transport, no client-side timeout, no retries.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{BaseURL: strings.TrimRight(baseURL, "/")}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// backoff returns the wait before retry attempt (1-based count of
// failures so far), raising it to the server's Retry-After hint when that
// is longer.
func (p RetryPolicy) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 { // <= 0: shift overflow
		d = p.MaxDelay
	}
	// Jitter over [d/2, d) so synchronized clients spread out.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// newCallIdentity mints the correlation identity for one logical call: an
// X-Request-Id and a W3C traceparent sharing the same 8 random bytes (the
// request id doubles as the client's span id). do mints it once and resends
// it verbatim on every retry attempt, so server-side logs, traces, and
// dedup all see one id per job no matter how many attempts it took to land.
// The traceparent flags are 00: the client proposes the trace identity but
// leaves the keep decision to the serving tiers' deterministic head sampler.
func newCallIdentity() (id, traceparent string) {
	var b [24]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Matches the server-side fallback: a constant id degrades
		// correlation, nothing else.
		return "0000000000000000", ""
	}
	id = hex.EncodeToString(b[:8])
	return id, "00-" + hex.EncodeToString(b[8:24]) + "-" + id + "-00"
}

// do issues one request with retries and decodes the JSON response into
// out, converting non-2xx statuses into *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var buf []byte
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			return err
		}
	}
	id, tp := newCallIdentity()
	policy := c.retry.withDefaults()
	for attempt := 1; ; attempt++ {
		err := c.doOnce(ctx, method, path, id, tp, buf, out)
		var ae *APIError
		if err == nil || attempt >= policy.MaxAttempts ||
			!errors.As(err, &ae) || !ae.Temporary() {
			return err
		}
		if ae.Envelope != nil {
			// A 503 carrying a snapshot envelope is the drain handshake,
			// not backpressure: the job already ran partway and must be
			// resumed from the envelope, never resubmitted from scratch.
			return err
		}
		t := time.NewTimer(policy.backoff(attempt, ae.RetryAfter))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}

// doOnce is a single HTTP attempt carrying the call's fixed identity.
func (c *Client) doOnce(ctx context.Context, method, path, id, tp string, body []byte, out any) error {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// The client always wants the JSON views; /metrics defaults to
	// Prometheus text exposition without this.
	req.Header.Set("Accept", "application/json")
	req.Header.Set("X-Request-Id", id)
	if tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		ae := &APIError{
			Status:     resp.StatusCode,
			RequestID:  resp.Header.Get("X-Request-Id"),
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			ae.Message = eb.Error
		} else {
			ae.Message = strings.TrimSpace(string(data))
		}
		// The drain handshake: a 503 answered to an in-flight resumable
		// session carries the snapshot envelope in the error body.
		var sd SessionDraining
		if json.Unmarshal(data, &sd) == nil && sd.Envelope != nil {
			ae.Envelope = sd.Envelope
		}
		return ae
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("ascd: decoding %s response: %w", path, err)
	}
	return nil
}

// maxRetryAfter caps the honored Retry-After hint. ascd and ascgw derive
// hints from queue depth and never exceed 60s; a larger value (a
// misconfigured proxy, a skewed HTTP-date) must not park a retry loop for
// hours, so anything beyond the cap is clamped rather than trusted.
const maxRetryAfter = 5 * time.Minute

// parseRetryAfter reads a Retry-After header in either RFC 9110 form:
// delay-seconds ("3") or HTTP-date ("Fri, 08 Aug 2026 01:02:03 GMT", the
// form classic proxies emit). Malformed values, negative delays, and
// dates in the past yield zero; absurd delays clamp to maxRetryAfter.
func parseRetryAfter(h string) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		d = time.Duration(secs) * time.Second
	} else if t, err := http.ParseTime(h); err == nil {
		// An HTTP-date is an absolute deadline; the delay is whatever is
		// left of it. A past date means "retry now", not "never".
		d = time.Until(t)
		if d < 0 {
			return 0
		}
	} else {
		return 0
	}
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	return d
}

// Run submits a simulation job and blocks until it completes (or ctx ends).
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunResult, error) {
	var res RunResult
	if err := c.do(ctx, http.MethodPost, "/v1/run", req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// RunBatch submits a set of jobs as one POST /v1/batch call and blocks
// until the whole batch resolves (or ctx ends). Job failures are per-job:
// inspect BatchResult.Jobs. A non-nil error means the batch itself was not
// accepted (bad request, backpressure after retries, transport failure).
func (c *Client) RunBatch(ctx context.Context, req BatchRequest) (*BatchResult, error) {
	var res BatchResult
	if err := c.do(ctx, http.MethodPost, "/v1/batch", req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Healthz checks daemon liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches and decodes the JSON view of the serving counters. The
// daemon's /metrics endpoint defaults to Prometheus text exposition;
// the client negotiates the JSON shape via Accept plus ?format=json.
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	var m Metrics
	if err := c.do(ctx, http.MethodGet, "/metrics?format=json", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}
