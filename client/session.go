package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ErrSessionSuspended is returned by Session.Run and Session.Resume when
// the segment suspended into a snapshot envelope instead of completing —
// a requested checkpoint, or a drain the session's retry budget could not
// ride out. The envelope is held by the Session; call Resume to continue,
// or Envelope to export it.
var ErrSessionSuspended = errors.New("client: session suspended into a snapshot envelope")

// Session is a resumable job: a simulation that can be checkpointed into a
// snapshot envelope, survive its backend draining (the session resumes the
// envelope on whatever the base URL routes to next — transparently when
// the base URL is an ascgw, by retrying through it otherwise), and be
// continued across process restarts by re-hydrating the envelope.
//
// A Session is safe for concurrent use, but Run/Resume represent one
// logical job: run them from one goroutine and use Checkpoint from others.
type Session struct {
	c   *Client
	req SessionRequest

	resumeRetry RetryPolicy

	mu     sync.Mutex
	id     string
	env    *SnapshotEnvelope
	result *SessionResult
	closed bool
}

// SessionOption configures a Session built by NewSession.
type SessionOption func(*Session)

// WithCheckpointEvery checkpoints the running session every n simulated
// cycles (rounded up to the engine's poll window), so the latest envelope
// is always exported from GET /v1/sessions/{id} while the job runs.
func WithCheckpointEvery(n int64) SessionOption {
	return func(s *Session) { s.req.CheckpointEveryCycles = n }
}

// WithResumeRetry shapes the session's automatic resume-after-drain loop:
// when a run or resume comes back with a drain handshake (503 plus
// envelope), the session retries the resume up to p.MaxAttempts times with
// the policy's backoff. The zero policy takes 3 attempts with default
// backoff.
func WithResumeRetry(p RetryPolicy) SessionOption {
	return func(s *Session) { s.resumeRetry = p }
}

// NewSession prepares a resumable session for req. Nothing is sent until
// Run.
func (c *Client) NewSession(req RunRequest, opts ...SessionOption) *Session {
	s := &Session{
		c:           c,
		req:         SessionRequest{RunRequest: req, Resumable: true},
		resumeRetry: RetryPolicy{MaxAttempts: 3},
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// ResumeSession re-hydrates a session from an exported envelope (from a
// prior Session.Envelope, a GET /v1/sessions/{id}, or a drain handshake
// another process caught). Call Resume to continue it.
func (c *Client) ResumeSession(env *SnapshotEnvelope, opts ...SessionOption) *Session {
	s := &Session{
		c:           c,
		req:         SessionRequest{RunRequest: env.Request, Resumable: true, CheckpointEveryCycles: env.CheckpointEveryCycles},
		resumeRetry: RetryPolicy{MaxAttempts: 3},
		env:         env,
	}
	if env != nil {
		s.id = env.SessionID
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// ID returns the server-assigned session id ("" before Run).
func (s *Session) ID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.id
}

// Envelope returns the latest snapshot envelope the session holds, nil if
// none was minted yet. The envelope is self-contained: persist it and
// continue the job later (or elsewhere) with Client.ResumeSession.
func (s *Session) Envelope() *SnapshotEnvelope {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.env
}

// Result returns the terminal result once the session completed, else nil.
func (s *Session) Result() *SessionResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.result
}

// Run submits the session and blocks until it completes, suspends, or
// fails. A drain handshake (503 with envelope) is absorbed: the session
// resumes the envelope automatically under the resume-retry policy, so a
// backend draining mid-job surfaces as nothing at all. It returns
// ErrSessionSuspended when the session suspended without completing (an
// explicit checkpoint, or a drain that outlasted the retry budget — the
// envelope is retained either way).
func (s *Session) Run(ctx context.Context) (*SessionResult, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("client: session is closed")
	}
	req := s.req
	s.mu.Unlock()
	var res SessionResult
	err := s.c.do(ctx, http.MethodPost, "/v1/sessions", req, &res)
	return s.settle(ctx, &res, err)
}

// Resume continues a suspended session from its held envelope, blocking
// like Run. Use it after ErrSessionSuspended or on a re-hydrated session.
func (s *Session) Resume(ctx context.Context) (*SessionResult, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("client: session is closed")
	}
	env := s.env
	s.mu.Unlock()
	if env == nil {
		return nil, errors.New("client: session holds no envelope to resume")
	}
	res, err := s.resumeEnvelope(ctx, env)
	return s.settle(ctx, res, err)
}

// resumeEnvelope POSTs one resume call for env.
func (s *Session) resumeEnvelope(ctx context.Context, env *SnapshotEnvelope) (*SessionResult, error) {
	var res SessionResult
	err := s.c.do(ctx, http.MethodPost, "/v1/sessions/"+env.SessionID+"/resume", ResumeRequest{Envelope: env}, &res)
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// settle folds one segment's outcome into the session, riding out drain
// handshakes by resuming the returned envelope under the retry policy.
func (s *Session) settle(ctx context.Context, res *SessionResult, err error) (*SessionResult, error) {
	policy := s.resumeRetry.withDefaults()
	if policy.MaxAttempts < 1 {
		policy.MaxAttempts = 1
	}
	for attempt := 1; ; attempt++ {
		var ae *APIError
		switch {
		case err == nil:
			// A 200: completed, or suspended by an explicit checkpoint.
			s.mu.Lock()
			s.id = res.SessionID
			if res.Envelope != nil {
				s.env = res.Envelope
			}
			if res.State == "completed" {
				s.result = res
				s.mu.Unlock()
				return res, nil
			}
			s.mu.Unlock()
			return res, fmt.Errorf("%w (reason: %s)", ErrSessionSuspended, res.Reason)
		case errors.As(err, &ae) && ae.Envelope != nil:
			// The drain handshake: hold the envelope and resume it.
			s.mu.Lock()
			s.id = ae.Envelope.SessionID
			s.env = ae.Envelope
			env := s.env
			s.mu.Unlock()
			if attempt >= policy.MaxAttempts {
				return nil, fmt.Errorf("%w (reason: draining, after %d resume attempts): %v",
					ErrSessionSuspended, attempt, err)
			}
			t := time.NewTimer(policy.backoff(attempt, ae.RetryAfter))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			res, err = s.resumeEnvelope(ctx, env)
		default:
			return nil, err
		}
	}
}

// Checkpoint asks the running session to suspend at its next cycle-window
// boundary and returns its status — with the envelope once the checkpoint
// landed. Call it from another goroutine while Resume blocks: Resume then
// returns ErrSessionSuspended and the session holds the envelope.
//
// It requires the server-assigned session id, which a fresh session only
// learns when its first segment returns — so Checkpoint works on resumed
// and re-hydrated sessions, but not during a fresh session's first Run.
// To checkpoint a first segment mid-run, use WithCheckpointEvery (the
// server minted envelopes are exported from GET /v1/sessions/{id}), or
// POST /v1/sessions/{id}/checkpoint with an id from GET /v1/sessions.
func (s *Session) Checkpoint(ctx context.Context) (*SessionStatus, error) {
	s.mu.Lock()
	id := s.id
	s.mu.Unlock()
	if id == "" {
		return nil, errors.New("client: session has not started")
	}
	var st SessionStatus
	if err := s.c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/checkpoint", struct{}{}, &st); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if st.Envelope != nil {
		s.env = st.Envelope
	}
	s.mu.Unlock()
	return &st, nil
}

// Status fetches the session's registry record from the server.
func (s *Session) Status(ctx context.Context) (*SessionStatus, error) {
	s.mu.Lock()
	id := s.id
	s.mu.Unlock()
	if id == "" {
		return nil, errors.New("client: session has not started")
	}
	var st SessionStatus
	if err := s.c.do(ctx, http.MethodGet, "/v1/sessions/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Close marks the session finished on the client side. It does not
// contact the server (a suspended session's record ages out of the
// server's retention window on its own); the held envelope stays
// exportable via Envelope.
func (s *Session) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}
