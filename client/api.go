// Package client is the wire API and Go client for ascd, the MTASC
// simulation-as-a-service daemon (internal/server, cmd/ascd). The request
// and response types here are the canonical JSON schema; the server imports
// them so the two cannot drift.
//
// The v1 wire schema is frozen: fields are never removed or renamed and
// their meanings never change; new optional fields may be added. See
// docs/API.md for the stability contract.
package client

import (
	"fmt"
	"time"

	asc "repro"
)

// MachineConfig selects the simulated architecture for a job. Zero fields
// take the paper-prototype defaults (16 PEs, 16 threads, 8-bit width, 1024
// local memory words, 4-ary broadcast tree).
type MachineConfig struct {
	PEs           int  `json:"pes,omitempty"`
	Threads       int  `json:"threads,omitempty"`
	Width         uint `json:"width,omitempty"`
	LocalMemWords int  `json:"localMemWords,omitempty"`
	Arity         int  `json:"arity,omitempty"`
	SeqMul        bool `json:"seqMul,omitempty"`
	FixedPriority bool `json:"fixedPriority,omitempty"`
	SMT           bool `json:"smt,omitempty"`
}

// ASC converts the wire config into the simulator facade configuration.
// The host execution engine is left at EngineAuto: it is architecturally
// invisible, so the server picks it per machine size.
func (c MachineConfig) ASC() asc.Config {
	return asc.Config{
		PEs: c.PEs, Threads: c.Threads, Width: c.Width,
		LocalMemWords: c.LocalMemWords, Arity: c.Arity,
		SeqMul: c.SeqMul, FixedPriority: c.FixedPriority, SMT: c.SMT,
	}
}

// RunRequest is a simulation job: exactly one of ASCL (source for the
// associative language compiler) or Asm (MTASC assembly) must be set.
type RunRequest struct {
	ASCL string `json:"ascl,omitempty"`
	Asm  string `json:"asm,omitempty"`

	Config MachineConfig `json:"config"`

	// LocalMem is the PE local-memory image, one row per PE; ScalarMem is
	// the control-unit data memory image (loaded after the program's own
	// .data segment, so it can override it).
	LocalMem  [][]int64 `json:"localMem,omitempty"`
	ScalarMem []int64   `json:"scalarMem,omitempty"`

	// MaxCycles bounds the simulation (0 = server default); requests above
	// the server cap are clamped. TimeoutMs bounds wall-clock time.
	MaxCycles int64 `json:"maxCycles,omitempty"`
	TimeoutMs int64 `json:"timeoutMs,omitempty"`

	// DumpScalar returns the first N scalar-memory words in the result;
	// DumpLocal returns the first N local-memory words of every PE.
	DumpScalar int `json:"dumpScalar,omitempty"`
	DumpLocal  int `json:"dumpLocal,omitempty"`

	// Trace opts into per-job pipeline tracing: the result carries a
	// Figure-2-style pipeline diagram and a stall breakdown of the run.
	// The server bounds the number of retained instruction records, so the
	// diagram covers the most recent instructions of a long run.
	Trace bool `json:"trace,omitempty"`
}

// Trace is the per-job diagnostic rendering returned when
// RunRequest.Trace is set.
type Trace struct {
	// Diagram is the pipeline stage diagram (instructions as rows, cycles
	// as columns) of the traced tail of the run.
	Diagram string `json:"diagram"`
	// Stats is the human-readable stall/idle breakdown by hazard cause.
	Stats string `json:"stats"`
}

// RunResult is a completed simulation.
type RunResult struct {
	Cycles       int64   `json:"cycles"`
	Instructions int64   `json:"instructions"`
	IPC          float64 `json:"ipc"`
	ScalarOps    int64   `json:"scalarOps"`
	ParallelOps  int64   `json:"parallelOps"`
	ReductionOps int64   `json:"reductionOps"`
	IdleCycles   int64   `json:"idleCycles"`

	ScalarMem []int64   `json:"scalarMem,omitempty"`
	LocalMem  [][]int64 `json:"localMem,omitempty"`

	// Asm is the generated MTASC assembly for ASCL jobs.
	Asm string `json:"asm,omitempty"`
	// PoolHit reports whether the job ran on a recycled warm machine.
	PoolHit bool `json:"poolHit"`
	// ProgramCacheHit reports whether the job's program came from the
	// content-addressed compiled-program cache instead of being compiled
	// or assembled for this request.
	ProgramCacheHit bool `json:"programCacheHit"`
	// BlockCacheHit reports whether the cached program already carried its
	// block-compiled form (basic blocks plus fused superinstructions) when
	// this job resolved it. Blocks build lazily on a program's first
	// execution, so the first run of a kernel reports false even when
	// ProgramCacheHit is true; repeat runs report true.
	BlockCacheHit bool `json:"blockCacheHit"`
	// Trace carries the pipeline diagram and stall breakdown when the
	// request set Trace.
	Trace *Trace `json:"trace,omitempty"`
}

// BatchRequest is a set of simulation jobs submitted as one POST
// /v1/batch call. Jobs execute with bounded concurrency and fail
// independently: one bad job yields a per-job error in the BatchResult,
// never a failed batch.
type BatchRequest struct {
	// Jobs are the simulation jobs; the server bounds the count
	// (-batch-max-jobs, default 64).
	Jobs []RunRequest `json:"jobs"`

	// TimeoutMs bounds the whole batch's wall-clock time. When it expires,
	// finished jobs keep their results and unfinished jobs are marked
	// canceled in the response. 0 means no batch-level limit beyond the
	// per-job limits.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// BatchJobResult is the outcome of one job within a batch: exactly one of
// Result or Error is set.
type BatchJobResult struct {
	// Result is the completed simulation, nil if the job failed or was
	// canceled.
	Result *RunResult `json:"result,omitempty"`
	// Error is the failure text; Status is its HTTP-equivalent status code
	// (the code the same job would have received from POST /v1/run:
	// 400 invalid request, 422 compile/simulation failure, 504 limit
	// exceeded, 408 canceled).
	Error  string `json:"error,omitempty"`
	Status int    `json:"status,omitempty"`
}

// BatchResult is the POST /v1/batch response. Jobs is index-aligned with
// the request's Jobs slice.
type BatchResult struct {
	Jobs      []BatchJobResult `json:"jobs"`
	Completed int              `json:"completed"`
	Failed    int              `json:"failed"`
	Canceled  int              `json:"canceled"`
}

// Metrics is the /metrics payload.
type Metrics struct {
	Requests        int64   `json:"requests"`
	Completed       int64   `json:"completed"`
	Failed          int64   `json:"failed"`
	Rejected        int64   `json:"rejected"`
	Canceled        int64   `json:"canceled"`
	Running         int64   `json:"running"`
	QueueDepth      int64   `json:"queueDepth"`
	QueueCap        int64   `json:"queueCap"`
	Workers         int64   `json:"workers"`
	PoolHits        int64   `json:"poolHits"`
	PoolMisses      int64   `json:"poolMisses"`
	PoolIdle        int64   `json:"poolIdle"`
	CyclesSimulated int64   `json:"cyclesSimulated"`
	LatencyMsP50    float64 `json:"latencyMsP50"`
	LatencyMsP99    float64 `json:"latencyMsP99"`
	// LatencyOverflow counts requests slower than the histogram's largest
	// finite bucket bound. When it is non-zero, a reported quantile equal
	// to the largest bound means "at least this slow" (the underlying
	// bucket is +Inf), not an exact estimate.
	LatencyOverflow int64 `json:"latencyOverflow"`
}

// errorBody is the JSON body of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// APIError is a non-2xx response from the daemon.
type APIError struct {
	Status  int    // HTTP status code
	Message string // server-provided error text
	// RequestID is the server-assigned X-Request-Id of the failed call;
	// quote it when correlating with the daemon's logs.
	RequestID string
	// RetryAfter is the server's Retry-After hint on 429/503 responses
	// (zero when absent). The client's retry policy (WithRetry) waits at
	// least this long before the next attempt.
	RetryAfter time.Duration
	// Envelope is the snapshot envelope of a suspended resumable session,
	// set when a 503 carries the drain handshake (see SessionDraining).
	// The retry machinery never resubmits such a call; Session.Run resumes
	// from the envelope instead.
	Envelope *SnapshotEnvelope
}

// Temporary reports whether the error is worth retrying: 429 (queue full)
// and 503 (draining) are load conditions, not request defects.
func (e *APIError) Temporary() bool {
	return e.Status == 429 || e.Status == 503
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("ascd: %d: %s (request-id %s)", e.Status, e.Message, e.RequestID)
	}
	return fmt.Sprintf("ascd: %d: %s", e.Status, e.Message)
}
