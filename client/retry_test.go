package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
)

// flakyHandler fails the first n requests with status, then succeeds.
func flakyHandler(n int, status int, retryAfter string) (*atomic.Int64, http.HandlerFunc) {
	var calls atomic.Int64
	return &calls, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			fmt.Fprintf(w, `{"error": "busy"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"cycles": 7, "instructions": 3}`)
	}
}

// TestRetryOn429 checks WithRetry retries queue-full responses with
// backoff until one succeeds.
func TestRetryOn429(t *testing.T) {
	calls, h := flakyHandler(2, http.StatusTooManyRequests, "0")
	hs := httptest.NewServer(h)
	defer hs.Close()
	c := client.New(hs.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	}))
	res, err := c.Run(context.Background(), client.RunRequest{Asm: "halt"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 7 {
		t.Errorf("cycles = %d, want 7", res.Cycles)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (two 429s then success)", got)
	}
}

// TestRetryOn503 checks a draining server is retried the same way.
func TestRetryOn503(t *testing.T) {
	calls, h := flakyHandler(1, http.StatusServiceUnavailable, "")
	hs := httptest.NewServer(h)
	defer hs.Close()
	c := client.New(hs.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 2, BaseDelay: time.Millisecond,
	}))
	if _, err := c.Run(context.Background(), client.RunRequest{Asm: "halt"}); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
}

// TestRetryExhaustionAndNonTemporary checks retries stop at MaxAttempts
// and never fire for non-temporary statuses.
func TestRetryExhaustionAndNonTemporary(t *testing.T) {
	calls, h := flakyHandler(100, http.StatusTooManyRequests, "0")
	hs := httptest.NewServer(h)
	defer hs.Close()
	c := client.New(hs.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond,
	}))
	_, err := c.Run(context.Background(), client.RunRequest{Asm: "halt"})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 429 {
		t.Fatalf("want APIError 429 after exhaustion, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}

	calls422, h422 := flakyHandler(100, http.StatusUnprocessableEntity, "")
	hs2 := httptest.NewServer(h422)
	defer hs2.Close()
	c2 := client.New(hs2.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 5, BaseDelay: time.Millisecond,
	}))
	if _, err := c2.Run(context.Background(), client.RunRequest{Asm: "halt"}); err == nil {
		t.Fatal("expected 422 error")
	}
	if got := calls422.Load(); got != 1 {
		t.Errorf("422 attempts = %d, want 1 (no retry on permanent failures)", got)
	}
}

// TestRetryHonorsRetryAfterAndContext checks the Retry-After hint floors
// the backoff, surfaces on APIError, and the wait respects the context.
func TestRetryHonorsRetryAfterAndContext(t *testing.T) {
	_, h := flakyHandler(100, http.StatusTooManyRequests, "2")
	hs := httptest.NewServer(h)
	defer hs.Close()

	// No retry policy: the hint is surfaced, not acted on.
	c := client.New(hs.URL)
	_, err := c.Run(context.Background(), client.RunRequest{Asm: "halt"})
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want APIError, got %v", err)
	}
	if ae.RetryAfter != 2*time.Second {
		t.Errorf("RetryAfter = %v, want 2s", ae.RetryAfter)
	}
	if !ae.Temporary() {
		t.Error("429 should be Temporary")
	}

	// With retries, the 2s hint floors the backoff; a 100ms context must
	// cut the wait short instead of sleeping it out.
	cr := client.New(hs.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond,
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cr.Run(ctx, client.RunRequest{Asm: "halt"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("want context.DeadlineExceeded during backoff, got %v", err)
	}
	if e := time.Since(start); e > time.Second {
		t.Errorf("backoff ignored the context: waited %v", e)
	}
}

// TestWithTimeout checks the per-attempt timeout cuts off a slow server.
func TestWithTimeout(t *testing.T) {
	block := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	defer hs.Close()
	defer close(block) // LIFO: unblock the handler before Close waits on it
	c := client.New(hs.URL, client.WithTimeout(30*time.Millisecond))
	start := time.Now()
	_, err := c.Run(context.Background(), client.RunRequest{Asm: "halt"})
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Errorf("timeout took %v", e)
	}
}

// TestWithHTTPClient checks a custom transport is actually used.
func TestWithHTTPClient(t *testing.T) {
	var rtCalls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer hs.Close()
	hc := &http.Client{Transport: roundTripFunc(func(r *http.Request) (*http.Response, error) {
		rtCalls.Add(1)
		return http.DefaultTransport.RoundTrip(r)
	})}
	c := client.New(hs.URL, client.WithHTTPClient(hc))
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rtCalls.Load() != 1 {
		t.Errorf("custom transport saw %d calls, want 1", rtCalls.Load())
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
