package client

import (
	"net/http"
	"testing"
	"time"
)

// TestParseRetryAfter pins both RFC 9110 Retry-After forms: delay-seconds
// and HTTP-date, plus the clamping of negative and absurd values. The
// HTTP-date cases compute the header from time.Now so the expected delay
// is known to within a tolerance.
func TestParseRetryAfter(t *testing.T) {
	date := func(d time.Duration) string {
		return time.Now().Add(d).UTC().Format(http.TimeFormat)
	}
	tests := []struct {
		name string
		in   string
		min  time.Duration // inclusive lower bound on the parsed delay
		max  time.Duration // inclusive upper bound
	}{
		{"empty", "", 0, 0},
		{"seconds", "3", 3 * time.Second, 3 * time.Second},
		{"seconds zero", "0", 0, 0},
		{"seconds padded", "  7  ", 7 * time.Second, 7 * time.Second},
		{"seconds negative", "-5", 0, 0},
		{"seconds absurd clamps", "999999999", maxRetryAfter, maxRetryAfter},
		{"malformed", "soon", 0, 0},
		{"malformed float", "2.5", 0, 0},
		{"http date future", date(10 * time.Second), 8 * time.Second, 10 * time.Second},
		{"http date past", date(-time.Minute), 0, 0},
		{"http date far future clamps", date(48 * time.Hour), maxRetryAfter, maxRetryAfter},
		{"ansi c date future", time.Now().Add(10 * time.Second).UTC().Format(time.ANSIC), 8 * time.Second, 10 * time.Second},
		{"garbage date", "Fri, 99 Zed 2020 00:00:00 GMT", 0, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := parseRetryAfter(tc.in)
			if got < tc.min || got > tc.max {
				t.Errorf("parseRetryAfter(%q) = %v, want in [%v, %v]", tc.in, got, tc.min, tc.max)
			}
		})
	}
}
