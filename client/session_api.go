// The v1.1 wire schema: resumable sessions and the snapshot envelope that
// carries a suspended machine between backends (live migration). Like the
// v1 types in api.go these are canonical — the server and gateway import
// them — and frozen under the same contract: fields are never removed or
// renamed; new optional fields may be added. See docs/API.md §"v1.1
// sessions".

package client

// SessionRequest is a POST /v1/sessions job: a RunRequest plus the session
// contract. With Resumable set the server may answer a drain with 503 and
// a snapshot envelope instead of failing the job; CheckpointEveryCycles
// additionally checkpoints the machine on a fixed cycle cadence so a crash
// loses at most one checkpoint interval.
type SessionRequest struct {
	RunRequest

	// Resumable opts the job into checkpoint/resume: on a server drain the
	// job suspends into a SnapshotEnvelope instead of failing, and the
	// session can be resumed on any backend with POST
	// /v1/sessions/{id}/resume. Resumable sessions cannot request Trace
	// (trace state is host-side and not part of the architectural
	// snapshot).
	Resumable bool `json:"resumable,omitempty"`

	// CheckpointEveryCycles checkpoints the running machine every N
	// simulated cycles (rounded up to the engine's poll window, a few
	// thousand cycles), keeping the latest envelope available from GET
	// /v1/sessions/{id} while the job runs. 0 disables periodic
	// checkpoints; drain-triggered checkpoints work regardless.
	CheckpointEveryCycles int64 `json:"checkpointEveryCycles,omitempty"`
}

// SimStats is the folded simulation statistics carried inside a snapshot
// envelope: the asc_sim_* counters accumulated across all segments of a
// session so far. On resume the server seeds its accounting from these, so
// a migrated session's final stats equal an uninterrupted run's.
type SimStats struct {
	Cycles       int64            `json:"cycles"`
	Instructions int64            `json:"instructions"`
	ScalarOps    int64            `json:"scalarOps"`
	ParallelOps  int64            `json:"parallelOps"`
	ReductionOps int64            `json:"reductionOps"`
	IdleCycles   int64            `json:"idleCycles"`
	IdleByCause  map[string]int64 `json:"idleByCause,omitempty"`
	StallByCause map[string]int64 `json:"stallByCause,omitempty"`
	Contention   int64            `json:"contention"`
	Fetches      int64            `json:"fetches"`
	Flushes      int64            `json:"flushes"`
	PerThread    []int64          `json:"perThread,omitempty"`
}

// SnapshotEnvelope is a suspended session in transit: everything a backend
// that has never seen the session needs to continue it bit-identically.
// Envelopes are versioned (Version), digest-addressed (Digest names the
// compiled program in the content-addressed cache; ConfigKey fingerprints
// the architecture), and self-checking (Sum covers the envelope itself).
// internal/migrate validates all three before any machine state is
// touched.
type SnapshotEnvelope struct {
	// Version is the envelope schema version; currently 1.
	Version int `json:"version"`

	// SessionID names the session across backends; the resume path adopts
	// it so GET /v1/sessions/{id} works wherever the session lands.
	SessionID string `json:"sessionId"`

	// Digest is the content-addressed program-cache key of the compiled
	// program the snapshot was taken under. Resume requires the same
	// digest: a backend whose cache no longer holds it recompiles the
	// embedded request source and verifies the digest matches before
	// restoring — a mismatch is a 409 stale_snapshot rejection, never a
	// silent recompute under a different key.
	Digest string `json:"digest"`

	// ConfigKey is the engine-agnostic architectural fingerprint
	// (migrate.ArchKey) of the machine configuration. Snapshots are
	// engine-portable, so the key deliberately excludes the host engine
	// and trace depth.
	ConfigKey string `json:"configKey"`

	// Request is the original job with the memory images stripped (the
	// snapshot carries all architectural state); source, config, budget,
	// and dump parameters remain so any backend can recompile and finish
	// the job.
	Request RunRequest `json:"request"`

	// Snapshot is the machine's architectural snapshot (base64 on the
	// wire), restorable into any identically configured machine.
	Snapshot []byte `json:"snapshot"`

	// ConsumedCycles is the cumulative simulated-cycle count across every
	// segment of the session so far; RemainingCycles is the budget left.
	// The resume budget is RemainingCycles, clamped to the resuming
	// server's own cap.
	ConsumedCycles  int64 `json:"consumedCycles"`
	RemainingCycles int64 `json:"remainingCycles"`

	// Checkpoints counts envelopes minted for this session so far.
	Checkpoints int64 `json:"checkpoints"`

	// CheckpointEveryCycles carries the session's periodic checkpoint
	// policy across a migration, so a resumed segment keeps the cadence
	// the client asked for.
	CheckpointEveryCycles int64 `json:"checkpointEveryCycles,omitempty"`

	// Stats is the folded simulation statistics across all prior segments.
	Stats SimStats `json:"stats"`

	// Sum is the envelope's own integrity digest (migrate.Seal), covering
	// every field above. Resume verifies it first.
	Sum string `json:"sum,omitempty"`
}

// SessionResult is the POST /v1/sessions (and .../resume) response. State
// is "completed" when the job ran to halt — Result then holds the ordinary
// run result — or "suspended" when a requested checkpoint stopped it, with
// the envelope to resume from. (A drain suspension is delivered as a 503
// with the envelope in the error body instead: see SessionDraining.)
type SessionResult struct {
	SessionID string `json:"sessionId"`
	// State is "completed" or "suspended".
	State string `json:"state"`
	// Reason qualifies a suspension: "requested" (explicit checkpoint) or
	// "draining" (server drain).
	Reason string `json:"reason,omitempty"`
	// Result is the completed simulation; nil while suspended.
	Result *RunResult `json:"result,omitempty"`
	// Envelope is the latest checkpoint; always set when suspended, and
	// also present on completion when periodic checkpoints ran.
	Envelope *SnapshotEnvelope `json:"envelope,omitempty"`
	// Resumed reports that this segment continued from an envelope rather
	// than starting fresh.
	Resumed bool `json:"resumed"`
	// Checkpoints counts envelopes minted across the session's lifetime.
	Checkpoints int64 `json:"checkpoints"`
	// StateDigest is the SHA-256 of the final architectural snapshot on
	// completion — the byte-identity witness the migration tests compare
	// against an uninterrupted run.
	StateDigest string `json:"stateDigest,omitempty"`
}

// SessionDraining is the error body of a 503 answered to an in-flight
// resumable session when its backend drains: the standard error text plus
// the snapshot envelope to resume elsewhere. This is the v1.1 drain
// handshake — a client (or the gateway, transparently) POSTs the envelope
// to /v1/sessions/{id}/resume on another backend and the job continues.
type SessionDraining struct {
	Error    string            `json:"error"`
	Envelope *SnapshotEnvelope `json:"envelope,omitempty"`
}

// SessionStatus is the GET /v1/sessions/{id} response.
type SessionStatus struct {
	SessionID string `json:"sessionId"`
	// State is "running", "suspended", "completed", or "failed".
	State     string `json:"state"`
	Resumable bool   `json:"resumable"`
	// Reason qualifies a suspended state ("requested" or "draining").
	Reason          string `json:"reason,omitempty"`
	ConsumedCycles  int64  `json:"consumedCycles"`
	RemainingCycles int64  `json:"remainingCycles"`
	Checkpoints     int64  `json:"checkpoints"`
	// Envelope is the latest checkpoint for suspended (and periodically
	// checkpointed running) sessions — the drain path's snapshot export.
	Envelope *SnapshotEnvelope `json:"envelope,omitempty"`
	// Result is the terminal outcome for completed sessions.
	Result *SessionResult `json:"result,omitempty"`
	// Error is the failure text for failed sessions.
	Error string `json:"error,omitempty"`
}

// SessionList is the GET /v1/sessions response.
type SessionList struct {
	Sessions []SessionStatus `json:"sessions"`
}

// ResumeRequest is the POST /v1/sessions/{id}/resume body.
type ResumeRequest struct {
	Envelope *SnapshotEnvelope `json:"envelope"`
}

// DrainRequest is the ascd POST /v1/admin/drain body (optional; an empty
// body takes the server's default checkpoint wait).
type DrainRequest struct {
	// TimeoutMs bounds how long the drain waits for running sessions to
	// reach their next checkpoint boundary (0 = server default).
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// DrainResult is the ascd POST /v1/admin/drain response: the server has
// stopped admitting work (healthz now fails, shedding it from gateways)
// and every running resumable session has been suspended into an envelope,
// exported via GET /v1/sessions/{id} and returned to any client still
// blocked on it.
type DrainResult struct {
	Draining bool `json:"draining"`
	// Suspended lists the session ids checkpointed by this drain.
	Suspended []string `json:"suspended"`
	// Running counts sessions that could not be suspended in time (still
	// running when the drain's wait expired).
	Running int `json:"running"`
}

// DrainBackendRequest is the ascgw POST /v1/admin/drain body: drain one
// backend and migrate its live sessions to ring successors.
type DrainBackendRequest struct {
	// Backend is the backend's base URL as configured on the gateway.
	Backend string `json:"backend"`
	// TimeoutMs bounds the whole drain-and-migrate walk (0 = gateway
	// default).
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// MigratedSession is one session's outcome in a gateway drain walk.
type MigratedSession struct {
	SessionID string `json:"sessionId"`
	From      string `json:"from"`
	To        string `json:"to,omitempty"`
	// Outcome is "migrated" (resumed to completion elsewhere),
	// "migrating" (an in-flight client-held session whose migration is
	// still running), or "failed".
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
}

// DrainBackendResult is the ascgw POST /v1/admin/drain response.
type DrainBackendResult struct {
	Backend  string            `json:"backend"`
	Drained  bool              `json:"drained"`
	Sessions []MigratedSession `json:"sessions"`
	Migrated int               `json:"migrated"`
	Failed   int               `json:"failed"`
}
