package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
)

// sessionStub fakes the v1.1 session endpoints with scripted outcomes.
type sessionStub struct {
	posts   atomic.Int64
	resumes atomic.Int64
	// drainPosts: answer the first N POST /v1/sessions with drain
	// handshakes; drainResumes likewise for resume calls.
	drainPosts   int64
	drainResumes int64
	// suspendFirst answers the first POST with a 200 "suspended" result
	// (an explicit checkpoint landed).
	suspendFirst bool
}

func (s *sessionStub) envelope() *client.SnapshotEnvelope {
	return &client.SnapshotEnvelope{Version: 1, SessionID: "s1"}
}

func (s *sessionStub) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		n := s.posts.Add(1)
		if s.suspendFirst {
			writeJSON(w, http.StatusOK, client.SessionResult{
				SessionID: "s1", State: "suspended", Reason: "requested", Envelope: s.envelope(),
			})
			return
		}
		if n <= s.drainPosts {
			w.Header().Set("Retry-After", "0")
			writeJSON(w, http.StatusServiceUnavailable, client.SessionDraining{
				Error: "server draining", Envelope: s.envelope(),
			})
			return
		}
		writeJSON(w, http.StatusOK, client.SessionResult{SessionID: "s1", State: "completed",
			Result: &client.RunResult{Cycles: 7}})
	})
	mux.HandleFunc("/v1/sessions/s1/resume", func(w http.ResponseWriter, r *http.Request) {
		n := s.resumes.Add(1)
		if n <= s.drainResumes {
			w.Header().Set("Retry-After", "0")
			writeJSON(w, http.StatusServiceUnavailable, client.SessionDraining{
				Error: "successor draining too", Envelope: s.envelope(),
			})
			return
		}
		writeJSON(w, http.StatusOK, client.SessionResult{SessionID: "s1", State: "completed",
			Resumed: true, Result: &client.RunResult{Cycles: 7}})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// TestSessionAbsorbsDrainHandshake: a 503 carrying an envelope is not
// retried by the transport-level retry machinery (that would resubmit the
// job from scratch); the session resumes the envelope instead, and the
// caller sees one clean completion.
func TestSessionAbsorbsDrainHandshake(t *testing.T) {
	stub := &sessionStub{drainPosts: 1}
	hs := httptest.NewServer(stub.handler())
	defer hs.Close()
	// A transport retry policy is configured on purpose: it must NOT kick
	// in for the handshake 503.
	c := client.New(hs.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond,
	}))
	sess := c.NewSession(client.RunRequest{Asm: "halt"},
		client.WithResumeRetry(client.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}))
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatalf("run across handshake: %v", err)
	}
	if res.State != "completed" || !res.Resumed || res.Result.Cycles != 7 {
		t.Errorf("result %+v, want a completed resumed segment", res)
	}
	if got := stub.posts.Load(); got != 1 {
		t.Errorf("POST /v1/sessions hit %d times, want 1 (handshake must not be transport-retried)", got)
	}
	if got := stub.resumes.Load(); got != 1 {
		t.Errorf("resume hit %d times, want 1", got)
	}
	if sess.ID() != "s1" {
		t.Errorf("session id %q, want s1", sess.ID())
	}
}

// TestSessionSuspendsAfterResumeBudget: when every backend keeps draining,
// the session gives up after its resume-retry budget but retains the
// freshest envelope for a later manual resume.
func TestSessionSuspendsAfterResumeBudget(t *testing.T) {
	stub := &sessionStub{drainPosts: 99, drainResumes: 99}
	hs := httptest.NewServer(stub.handler())
	defer hs.Close()
	c := client.New(hs.URL)
	sess := c.NewSession(client.RunRequest{Asm: "halt"},
		client.WithResumeRetry(client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}))
	_, err := sess.Run(context.Background())
	if !errors.Is(err, client.ErrSessionSuspended) {
		t.Fatalf("exhausted run returned %v, want ErrSessionSuspended", err)
	}
	if sess.Envelope() == nil {
		t.Fatal("session dropped its envelope on exhaustion")
	}
	if got := stub.resumes.Load(); got != 1 {
		t.Errorf("resume attempts %d, want 1 (budget of 2 minus the original handshake)", got)
	}
}

// TestSessionExplicitCheckpointThenResume: a 200 "suspended" answer (an
// explicit checkpoint landed) surfaces as ErrSessionSuspended with the
// result attached, and Resume continues from the held envelope.
func TestSessionExplicitCheckpointThenResume(t *testing.T) {
	stub := &sessionStub{suspendFirst: true}
	hs := httptest.NewServer(stub.handler())
	defer hs.Close()
	c := client.New(hs.URL)
	sess := c.NewSession(client.RunRequest{Asm: "halt"})
	res, err := sess.Run(context.Background())
	if !errors.Is(err, client.ErrSessionSuspended) {
		t.Fatalf("suspended run returned %v, want ErrSessionSuspended", err)
	}
	if res == nil || res.State != "suspended" || res.Reason != "requested" {
		t.Fatalf("suspended result %+v", res)
	}
	res, err = sess.Resume(context.Background())
	if err != nil || res.State != "completed" {
		t.Fatalf("resume: res %+v err %v", res, err)
	}

	// Closing ends the client-side session; the envelope stays exportable.
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background()); err == nil {
		t.Error("closed session accepted Run")
	}
	if sess.Envelope() == nil {
		t.Error("closed session dropped its envelope")
	}
}

// TestResumeSessionRehydrates: an exported envelope re-hydrates a session
// in a fresh process and continues through the resume endpoint.
func TestResumeSessionRehydrates(t *testing.T) {
	stub := &sessionStub{}
	hs := httptest.NewServer(stub.handler())
	defer hs.Close()
	c := client.New(hs.URL)
	env := &client.SnapshotEnvelope{Version: 1, SessionID: "s1",
		Request: client.RunRequest{Asm: "halt"}}
	sess := c.ResumeSession(env)
	if sess.ID() != "s1" {
		t.Errorf("re-hydrated id %q, want s1", sess.ID())
	}
	res, err := sess.Resume(context.Background())
	if err != nil || res.State != "completed" || !res.Resumed {
		t.Fatalf("re-hydrated resume: res %+v err %v", res, err)
	}
	if got := stub.posts.Load(); got != 0 {
		t.Errorf("re-hydrated session POSTed /v1/sessions %d times, want 0", got)
	}
}
