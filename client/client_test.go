package client_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/server"
)

func newTestServer(t *testing.T) *client.Client {
	t.Helper()
	s := server.New(server.Config{Workers: 1})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		hs.Close()
	})
	return client.New(hs.URL)
}

// TestMetricsRoundTrip checks Client.Metrics decodes the server's JSON
// compat view after real work has flowed through.
func TestMetricsRoundTrip(t *testing.T) {
	c := newTestServer(t)
	ctx := context.Background()

	req := client.RunRequest{
		ASCL: `
			parallel v = pread(0);
			write(0, sumval(v));
		`,
		Config:     client.MachineConfig{PEs: 4, Width: 32},
		LocalMem:   [][]int64{{1}, {2}, {3}, {4}},
		DumpScalar: 1,
	}
	res, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScalarMem[0] != 10 {
		t.Fatalf("sum = %d, want 10", res.ScalarMem[0])
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 1 || m.Completed != 1 {
		t.Errorf("metrics = %+v, want requests=1 completed=1", m)
	}
	if m.LatencyMsP50 <= 0 || m.LatencyMsP99 < m.LatencyMsP50 {
		t.Errorf("latency quantiles implausible: p50=%v p99=%v", m.LatencyMsP50, m.LatencyMsP99)
	}
	if m.LatencyOverflow != 0 {
		t.Errorf("latencyOverflow = %d, want 0 for sub-30s jobs", m.LatencyOverflow)
	}
}

// TestAPIErrorCarriesRequestID checks a failing job's error string names
// the server-assigned request id, so users can grep the daemon's logs.
func TestAPIErrorCarriesRequestID(t *testing.T) {
	c := newTestServer(t)
	_, err := c.Run(context.Background(), client.RunRequest{ASCL: "parallel = ;"})
	if err == nil {
		t.Fatal("expected compile error")
	}
	ae, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("expected *client.APIError, got %T: %v", err, err)
	}
	if ae.RequestID == "" {
		t.Error("APIError.RequestID is empty")
	}
	if !strings.Contains(err.Error(), ae.RequestID) {
		t.Errorf("error string %q does not carry request id %q", err.Error(), ae.RequestID)
	}
}

// TestRunBatchRoundTrip checks Client.RunBatch end to end against a real
// server: per-job results and errors land in order, and repeat programs
// report cache hits.
func TestRunBatchRoundTrip(t *testing.T) {
	c := newTestServer(t)
	good := client.RunRequest{
		ASCL: `
			parallel v = pread(0);
			write(0, sumval(v));
		`,
		Config:     client.MachineConfig{PEs: 4, Width: 32},
		LocalMem:   [][]int64{{1}, {2}, {3}, {4}},
		DumpScalar: 1,
	}
	bad := client.RunRequest{ASCL: "parallel = ;"}
	res, err := c.RunBatch(context.Background(), client.BatchRequest{
		Jobs: []client.RunRequest{good, bad, good},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 3 {
		t.Fatalf("got %d job results, want 3", len(res.Jobs))
	}
	if res.Completed != 2 || res.Failed != 1 || res.Canceled != 0 {
		t.Errorf("tally = %d/%d/%d, want completed=2 failed=1 canceled=0",
			res.Completed, res.Failed, res.Canceled)
	}
	for _, i := range []int{0, 2} {
		j := res.Jobs[i]
		if j.Result == nil {
			t.Fatalf("job %d: no result (error %q)", i, j.Error)
		}
		if j.Result.ScalarMem[0] != 10 {
			t.Errorf("job %d: sum = %d, want 10", i, j.Result.ScalarMem[0])
		}
	}
	// Jobs 0 and 2 share a program; whichever ran second hit the cache.
	if !res.Jobs[0].Result.ProgramCacheHit && !res.Jobs[2].Result.ProgramCacheHit {
		t.Error("jobs 0 and 2 share a program but neither hit the cache")
	}
	if res.Jobs[1].Result != nil || res.Jobs[1].Error == "" || res.Jobs[1].Status != 422 {
		t.Errorf("job 1 = %+v, want a 422 compile error", res.Jobs[1])
	}
}
